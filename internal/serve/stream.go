// The per-job event hub behind the SSE endpoint.
//
// Publishing never blocks the simulation: each subscriber owns a bounded
// frame buffer, and a subscriber that cannot keep up loses frames (counted,
// and announced to it as a `gap` event once it catches up) rather than
// stalling the publisher — diagnostics are a best-effort live view, the
// authoritative record is the job's Result.

package serve

import (
	"encoding/json"
	"sync"
)

// frame is one server-sent event: a named event type and a JSON payload.
type frame struct {
	Event string
	Data  []byte
}

// subCap is each subscriber's frame buffer; a consumer more than subCap
// frames behind starts losing frames.
const subCap = 64

type subscriber struct {
	ch      chan frame
	dropped int // frames lost while the buffer was full
}

// hub fans one job's event stream out to any number of subscribers.
type hub struct {
	mu     sync.Mutex
	subs   map[*subscriber]struct{}
	closed bool
}

func newHub() *hub {
	return &hub{subs: make(map[*subscriber]struct{})}
}

// subscribe registers a new consumer. The returned channel closes when the
// hub closes (job reached a terminal state). cancel must be called when
// the consumer goes away.
func (h *hub) subscribe() (ch <-chan frame, cancel func()) {
	s := &subscriber{ch: make(chan frame, subCap)}
	h.mu.Lock()
	if h.closed {
		close(s.ch)
	} else {
		h.subs[s] = struct{}{}
	}
	h.mu.Unlock()
	return s.ch, func() {
		h.mu.Lock()
		if _, ok := h.subs[s]; ok {
			delete(h.subs, s)
			close(s.ch)
		}
		h.mu.Unlock()
	}
}

// publish fans an event to every subscriber, dropping frames for any
// subscriber whose buffer is full. When a previously slow subscriber has
// room again, it first receives a gap event naming how many frames it
// lost, so consumers can tell "quiet stream" from "I fell behind".
func (h *hub) publish(event string, payload any) {
	data, err := json.Marshal(payload)
	if err != nil {
		return // payloads are our own structs; marshal cannot realistically fail
	}
	f := frame{Event: event, Data: data}
	h.mu.Lock()
	defer h.mu.Unlock()
	for s := range h.subs {
		if s.dropped > 0 {
			// Two sends must fit for the gap notice plus the frame; if not,
			// keep counting.
			if len(s.ch) >= cap(s.ch)-1 {
				s.dropped++
				continue
			}
			gap, _ := json.Marshal(map[string]int{"dropped": s.dropped})
			s.ch <- frame{Event: "gap", Data: gap}
			s.dropped = 0
		}
		select {
		case s.ch <- f:
		default:
			s.dropped++
		}
	}
}

// close ends the stream: every subscriber's channel closes after the
// frames already buffered drain.
func (h *hub) close() {
	h.mu.Lock()
	defer h.mu.Unlock()
	if h.closed {
		return
	}
	h.closed = true
	for s := range h.subs {
		close(s.ch)
	}
	h.subs = map[*subscriber]struct{}{}
}
