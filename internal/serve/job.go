// The per-job state machine and its on-disk manifest.
//
// Every job lives in its own directory, <data>/jobs/<id>/, holding
// job.json (the manifest), ckpt/ (the job's checkpoint epochs) and, once
// rank 0 finishes, result.json. The manifest is rewritten atomically
// (temp + fsync + rename, the ckpt.WriteShard discipline) on every state
// transition, so a daemon killed at any instant leaves a manifest that is
// either the old state or the new one — never torn — and a restarted
// daemon re-adopts exactly the jobs that were in flight.

package serve

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"time"

	"picpar/internal/jobspec"
)

// State is one node of the job lifecycle:
//
//	queued → assembling → running → done
//	                         ↘ checkpointing   (graceful drain; resumable)
//	                         ↘ failed          (typed Reason)
//	queued/running → cancelled
//
// queued, assembling, running and checkpointing are live states a
// restarted daemon re-adopts; done, failed and cancelled are terminal.
type State string

const (
	StateQueued        State = "queued"
	StateAssembling    State = "assembling"
	StateRunning       State = "running"
	StateCheckpointing State = "checkpointing"
	StateDone          State = "done"
	StateFailed        State = "failed"
	StateCancelled     State = "cancelled"
)

// Terminal reports whether s is a final state.
func (s State) Terminal() bool {
	return s == StateDone || s == StateFailed || s == StateCancelled
}

// JobResult is the distilled, JSON-able outcome of a finished run (the
// full pic.Result holds function-valued config fields and cannot travel).
type JobResult struct {
	TotalTime           float64 `json:"total_time"`
	Fingerprint         string  `json:"fingerprint"` // %016x physics hash
	InitTime            float64 `json:"init_time"`
	ComputeMax          float64 `json:"compute_max"`
	Efficiency          float64 `json:"efficiency"`
	NumRedistributions  int     `json:"num_redistributions"`
	FinalParticleCount  int     `json:"final_particle_count"`
	CompletedIterations int     `json:"completed_iterations"`
	Stopped             bool    `json:"stopped,omitempty"` // drained, not finished
}

// Manifest is the persisted face of one job.
type Manifest struct {
	ID    string       `json:"id"`
	Spec  jobspec.Spec `json:"spec"`
	State State        `json:"state"`
	// Reason is the typed cause of a failed or cancelled state (one of the
	// Reason* constants), with Detail carrying the human diagnostic.
	Reason string `json:"reason,omitempty"`
	Detail string `json:"detail,omitempty"`

	Submitted time.Time `json:"submitted"`
	Started   time.Time `json:"started,omitempty"`
	Finished  time.Time `json:"finished,omitempty"`

	// Attempts counts launched run attempts (adoption after a daemon
	// restart resumes the count — the retry budget spans daemon lifetimes).
	Attempts int `json:"attempts,omitempty"`
	// PGID is the process group of the current attempt's worker processes,
	// 0 when none are running. A restarted daemon kills this group before
	// relaunching, so orphans from a kill -9 of the daemon never race the
	// replacement world for the checkpoint directory.
	PGID int `json:"pgid,omitempty"`

	Result *JobResult `json:"result,omitempty"`
}

// IterEvent is the wire form of one iteration's diagnostics on the SSE
// stream (a distillation of pic.IterationRecord) and the JSONL line a
// rank-0 worker process emits on stdout.
type IterEvent struct {
	Iter           int     `json:"iter"`
	Time           float64 `json:"time"`
	Compute        float64 `json:"compute"`
	Redistributed  bool    `json:"redistributed,omitempty"`
	RedistStrategy string  `json:"redist_strategy,omitempty"`
	BusyImbalance  float64 `json:"busy_imbalance"`
	FieldEnergy    float64 `json:"field_energy,omitempty"`
	KineticEnergy  float64 `json:"kinetic_energy,omitempty"`
}

// JobDir returns the directory of one job under the data directory.
func JobDir(data, id string) string {
	return filepath.Join(data, "jobs", id)
}

func manifestPath(jobDir string) string { return filepath.Join(jobDir, "job.json") }

// CheckpointDir returns the job's checkpoint directory.
func CheckpointDir(jobDir string) string { return filepath.Join(jobDir, "ckpt") }

// resultPath returns the job's result file (written by rank 0).
func resultPath(jobDir string) string { return filepath.Join(jobDir, "result.json") }

// writeFileAtomic lands bytes under path via temp + fsync + rename, then
// fsyncs the directory — the same torn-write discipline as ckpt shards.
func writeFileAtomic(path string, b []byte) error {
	dir := filepath.Dir(path)
	f, err := os.CreateTemp(dir, "."+filepath.Base(path)+"-*.tmp")
	if err != nil {
		return fmt.Errorf("serve: %w", err)
	}
	tmp := f.Name()
	fail := func(e error) error {
		f.Close()
		os.Remove(tmp)
		return fmt.Errorf("serve: write %s: %w", path, e)
	}
	if _, err := f.Write(b); err != nil {
		return fail(err)
	}
	if err := f.Sync(); err != nil {
		return fail(err)
	}
	if err := f.Close(); err != nil {
		os.Remove(tmp)
		return fmt.Errorf("serve: close %s: %w", path, err)
	}
	if err := os.Rename(tmp, path); err != nil {
		os.Remove(tmp)
		return fmt.Errorf("serve: rename %s: %w", path, err)
	}
	if d, derr := os.Open(dir); derr == nil {
		_ = d.Sync()
		_ = d.Close()
	}
	return nil
}

// WriteManifest atomically persists m into its job directory.
func WriteManifest(jobDir string, m *Manifest) error {
	b, err := json.MarshalIndent(m, "", "  ")
	if err != nil {
		return fmt.Errorf("serve: encode manifest: %w", err)
	}
	return writeFileAtomic(manifestPath(jobDir), append(b, '\n'))
}

// ReadManifest loads a job manifest.
func ReadManifest(jobDir string) (*Manifest, error) {
	b, err := os.ReadFile(manifestPath(jobDir))
	if err != nil {
		return nil, fmt.Errorf("serve: %w", err)
	}
	var m Manifest
	if err := json.Unmarshal(b, &m); err != nil {
		return nil, fmt.Errorf("serve: decode %s: %w", manifestPath(jobDir), err)
	}
	return &m, nil
}

// WriteResult atomically persists a finished run's distilled result (rank
// 0 of a worker world calls this before exiting).
func WriteResult(jobDir string, r *JobResult) error {
	b, err := json.MarshalIndent(r, "", "  ")
	if err != nil {
		return fmt.Errorf("serve: encode result: %w", err)
	}
	return writeFileAtomic(resultPath(jobDir), append(b, '\n'))
}

// ReadResult loads a job's result file.
func ReadResult(jobDir string) (*JobResult, error) {
	b, err := os.ReadFile(resultPath(jobDir))
	if err != nil {
		return nil, fmt.Errorf("serve: %w", err)
	}
	var r JobResult
	if err := json.Unmarshal(b, &r); err != nil {
		return nil, fmt.Errorf("serve: decode %s: %w", resultPath(jobDir), err)
	}
	return &r, nil
}

// RemoveResult clears a stale result file before a fresh attempt, so a
// finished-looking result from a previous attempt can never be mistaken
// for the new attempt's outcome.
func RemoveResult(jobDir string) {
	_ = os.Remove(resultPath(jobDir))
}
