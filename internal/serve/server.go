// The daemon core: admission control, the job scheduler, crash adoption
// and the HTTP API.
//
//	POST /jobs               submit a jobspec.Spec JSON document → {"id": ...}
//	GET  /jobs               list job manifests (also GET /jobz)
//	GET  /jobs/{id}          one job's manifest
//	POST /jobs/{id}/cancel   cancel a queued or running job
//	GET  /jobs/{id}/events   SSE stream: state transitions + iteration diagnostics
//	GET  /healthz            daemon liveness + occupancy
//
// Admission is bounded on every axis: a full queue is a typed 429, a
// draining daemon is a typed 503, and a job exceeding the per-job rank or
// iteration caps is a typed 400 — the daemon never accepts work it cannot
// finish. Each accepted job runs under a wall-clock deadline and a
// job-level attempt budget wrapped around the runner's own rank-respawn
// budget; when every layer of budget is spent the job fails with a typed
// reason, it never wedges the pool.

package serve

import (
	"context"
	"crypto/rand"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"os"
	"path/filepath"
	"sort"
	"sync"
	"syscall"
	"time"

	"picpar/internal/comm"
	"picpar/internal/jobspec"
)

// Limits bounds what the daemon will accept and how hard it will try.
// Zero fields take the stated defaults.
type Limits struct {
	MaxQueue      int           // queued (not yet running) jobs; default 16
	MaxActive     int           // concurrently running jobs; default 2
	MaxRanks      int           // per-job rank cap; default 16
	MaxIterations int           // per-job iteration cap; default 100000
	MaxWall       time.Duration // per-job wall-clock deadline; default 15m
	MaxAttempts   int           // run attempts per job before failing; default 3
	RetryBackoff  time.Duration // wait before re-attempting a failed job, doubling per attempt; default 1s
}

func (l Limits) withDefaults() Limits {
	if l.MaxQueue <= 0 {
		l.MaxQueue = 16
	}
	if l.MaxActive <= 0 {
		l.MaxActive = 2
	}
	if l.MaxRanks <= 0 {
		l.MaxRanks = 16
	}
	if l.MaxIterations <= 0 {
		l.MaxIterations = 100000
	}
	if l.MaxWall <= 0 {
		l.MaxWall = 15 * time.Minute
	}
	if l.MaxAttempts <= 0 {
		l.MaxAttempts = 3
	}
	if l.RetryBackoff <= 0 {
		l.RetryBackoff = time.Second
	}
	return l
}

// errDrain is the cancellation cause of a graceful shutdown; runners turn
// it into a checkpoint-and-stop rather than a kill.
var errDrain = errors.New("serve: daemon draining")

// job is the in-memory side of one managed job.
type job struct {
	mu     sync.Mutex
	m      Manifest
	dir    string
	hub    *hub
	cancel context.CancelCauseFunc // non-nil while an attempt runs
}

// Server is the simulation-job daemon: a bounded scheduler over a Runner,
// with every job state persisted in the data directory.
type Server struct {
	dir    string
	runner Runner
	limits Limits
	logf   func(format string, args ...any)

	mu       sync.Mutex
	jobs     map[string]*job
	queue    []string // FIFO of queued job ids
	active   int
	draining bool

	root     context.Context
	shutdown context.CancelCauseFunc
	wg       sync.WaitGroup
}

// New opens (creating if needed) the data directory, adopts any jobs a
// previous daemon left in flight — killing their orphaned worker process
// groups first — and returns a serving-ready Server. Adopted live jobs are
// re-queued and resume from their latest complete checkpoint epoch.
func New(dir string, runner Runner, limits Limits, logf func(string, ...any)) (*Server, error) {
	if logf == nil {
		logf = func(format string, args ...any) {
			fmt.Fprintf(os.Stderr, "picserve: "+format+"\n", args...)
		}
	}
	if err := os.MkdirAll(filepath.Join(dir, "jobs"), 0o755); err != nil {
		return nil, fmt.Errorf("serve: %w", err)
	}
	root, shutdown := context.WithCancelCause(context.Background())
	s := &Server{
		dir:      dir,
		runner:   runner,
		limits:   limits.withDefaults(),
		logf:     logf,
		jobs:     map[string]*job{},
		root:     root,
		shutdown: shutdown,
	}
	if err := s.adopt(); err != nil {
		return nil, err
	}
	s.dispatch()
	return s, nil
}

// adopt scans the data directory for manifests from a previous daemon
// life. Terminal jobs are kept for listing; live jobs (queued, assembling,
// running, checkpointing) have their orphaned worker groups killed and are
// re-queued — the checkpoint directory decides where they resume.
func (s *Server) adopt() error {
	entries, err := os.ReadDir(filepath.Join(s.dir, "jobs"))
	if err != nil {
		return fmt.Errorf("serve: %w", err)
	}
	var adopted []string
	for _, e := range entries {
		if !e.IsDir() {
			continue
		}
		jd := JobDir(s.dir, e.Name())
		m, merr := ReadManifest(jd)
		if merr != nil {
			s.logf("adopt: skipping %s: %v", e.Name(), merr)
			continue
		}
		j := &job{m: *m, dir: jd, hub: newHub()}
		if m.State.Terminal() {
			j.hub.close()
			s.jobs[m.ID] = j
			continue
		}
		if m.PGID > 0 {
			// kill -9 of the daemon leaves the worker group running (or
			// parked at a rendezvous that no longer exists). Kill it before
			// relaunching, so two worlds never write one checkpoint dir.
			_ = syscall.Kill(-m.PGID, syscall.SIGKILL)
			s.logf("adopt: job %s: killed orphaned process group %d", m.ID, m.PGID)
			j.m.PGID = 0
		}
		j.m.State = StateQueued
		if err := WriteManifest(jd, &j.m); err != nil {
			return err
		}
		s.jobs[m.ID] = j
		s.queue = append(s.queue, m.ID)
		adopted = append(adopted, m.ID)
	}
	sort.Strings(s.queue) // deterministic adoption order
	for _, id := range adopted {
		s.logf("adopt: job %s re-queued", id)
	}
	return nil
}

// newID returns a fresh collision-checked job id.
func (s *Server) newID() (string, error) {
	for i := 0; i < 32; i++ {
		var b [4]byte
		if _, err := rand.Read(b[:]); err != nil {
			return "", fmt.Errorf("serve: %w", err)
		}
		id := fmt.Sprintf("j-%08x", b)
		if _, taken := s.jobs[id]; !taken {
			if _, err := os.Stat(JobDir(s.dir, id)); os.IsNotExist(err) {
				return id, nil
			}
		}
	}
	return "", errors.New("serve: could not allocate a job id")
}

// Submit runs admission control and, if the job is accepted, persists and
// queues it. The error (if any) is a typed *RejectError.
func (s *Server) Submit(spec jobspec.Spec) (*Manifest, error) {
	cfg, err := spec.Config()
	if err != nil {
		return nil, reject(http.StatusBadRequest, ReasonBadSpec, "%v", err)
	}
	ranks := cfg.P
	if ranks == 0 {
		ranks = 4 // pic's own default world size
	}
	iters := cfg.Iterations

	s.mu.Lock()
	defer s.mu.Unlock()
	switch {
	case s.draining:
		return nil, reject(http.StatusServiceUnavailable, ReasonDraining,
			"daemon is draining; not admitting jobs")
	case ranks > s.limits.MaxRanks:
		return nil, reject(http.StatusBadRequest, ReasonOverRankCap,
			"job wants %d ranks, cap is %d", ranks, s.limits.MaxRanks)
	case iters > s.limits.MaxIterations:
		return nil, reject(http.StatusBadRequest, ReasonOverIterCap,
			"job wants %d iterations, cap is %d", iters, s.limits.MaxIterations)
	case len(s.queue) >= s.limits.MaxQueue:
		return nil, reject(http.StatusTooManyRequests, ReasonQueueFull,
			"queue is full (%d jobs); retry later", len(s.queue))
	}

	id, err := s.newID()
	if err != nil {
		return nil, err
	}
	jd := JobDir(s.dir, id)
	if err := os.MkdirAll(jd, 0o755); err != nil {
		return nil, fmt.Errorf("serve: %w", err)
	}
	j := &job{
		m: Manifest{
			ID:        id,
			Spec:      spec,
			State:     StateQueued,
			Submitted: time.Now().UTC(),
		},
		dir: jd,
		hub: newHub(),
	}
	if err := WriteManifest(jd, &j.m); err != nil {
		return nil, err
	}
	s.jobs[id] = j
	s.queue = append(s.queue, id)
	m := j.m
	s.dispatchLocked()
	return &m, nil
}

// dispatch starts queued jobs while pool slots are free.
func (s *Server) dispatch() {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.dispatchLocked()
}

func (s *Server) dispatchLocked() {
	for !s.draining && s.active < s.limits.MaxActive && len(s.queue) > 0 {
		id := s.queue[0]
		s.queue = s.queue[1:]
		j := s.jobs[id]
		if j == nil {
			continue
		}
		s.active++
		s.wg.Add(1)
		go s.runJob(j)
	}
}

// setState moves a job to a new state, persists the manifest, and
// publishes the transition on the job's event stream. mutate (optional)
// edits the manifest under the job lock before the write. A job already
// in a terminal state never leaves it (a cancel racing the scheduler must
// not be resurrected); the refused transition returns false.
func (s *Server) setState(j *job, st State, mutate func(*Manifest)) bool {
	j.mu.Lock()
	if j.m.State.Terminal() {
		j.mu.Unlock()
		return false
	}
	j.m.State = st
	if mutate != nil {
		mutate(&j.m)
	}
	m := j.m
	j.mu.Unlock()
	if err := WriteManifest(j.dir, &m); err != nil {
		s.logf("job %s: persist %s: %v", m.ID, st, err)
	}
	j.hub.publish("state", map[string]string{"state": string(st), "reason": m.Reason})
	if st.Terminal() {
		j.hub.close()
	}
	return true
}

// runJob drives one job through attempts until a terminal state or a
// drain. It owns one pool slot.
func (s *Server) runJob(j *job) {
	defer func() {
		s.mu.Lock()
		s.active--
		s.dispatchLocked()
		s.mu.Unlock()
		s.wg.Done()
	}()

	ctx, cancel := context.WithCancelCause(s.root)
	defer cancel(nil)
	deadline := time.AfterFunc(s.limits.MaxWall, func() {
		cancel(reject(http.StatusGatewayTimeout, ReasonWallTime,
			"job exceeded the %v wall-time cap", s.limits.MaxWall))
	})
	defer deadline.Stop()
	j.mu.Lock()
	j.cancel = cancel
	if j.m.Started.IsZero() {
		j.m.Started = time.Now().UTC()
	}
	j.mu.Unlock()

	for {
		if !s.setState(j, StateAssembling, func(m *Manifest) { m.Attempts++ }) {
			return // cancelled before the attempt started
		}
		rc := RunContext{
			Manifest:    j.snapshot(),
			Dir:         j.dir,
			OnIteration: func(ev IterEvent) { j.hub.publish("iter", ev) },
			SetPGID: func(pgid int) {
				s.setStatePGID(j, pgid)
			},
			Log: s.logf,
		}
		s.setState(j, StateRunning, nil)
		res, err := s.runner.Run(ctx, rc)

		cause := context.Cause(ctx)
		switch {
		case err == nil && !res.Stopped:
			// A full result always wins, even if the deadline raced the
			// final iteration.
			s.setState(j, StateDone, func(m *Manifest) {
				m.Result = res
				m.Finished = time.Now().UTC()
				m.PGID = 0
			})
			s.logf("job %s: done, TotalTime %.7f Fingerprint %s",
				rc.Manifest.ID, res.TotalTime, res.Fingerprint)
			return
		case cause != nil && errors.Is(cause, errDrain):
			// Graceful drain (whether the attempt stopped cleanly with a
			// final epoch or died mid-drain): checkpoints up to the last
			// complete epoch survive; park the job for the next daemon life.
			s.setState(j, StateCheckpointing, func(m *Manifest) { m.PGID = 0 })
			return
		case err == nil && cause == nil:
			// Stopped without a cause the daemon set (e.g. an external
			// SIGTERM reached the worker group): resumable, park it.
			s.setState(j, StateCheckpointing, func(m *Manifest) { m.PGID = 0 })
			return
		case cause != nil:
			// Deadline or operator cancellation: typed terminal state.
			reason, detail := ReasonCancelled, "cancelled"
			var re *RejectError
			if errors.As(cause, &re) {
				reason, detail = re.Reason, re.Msg
			}
			st := StateFailed
			if reason == ReasonCancelled {
				st = StateCancelled
			}
			s.setState(j, st, func(m *Manifest) {
				m.Reason = reason
				m.Detail = detail
				m.Finished = time.Now().UTC()
				m.PGID = 0
			})
			return
		}

		// The attempt failed on its own (rank respawn budget exhausted,
		// sick spec surfacing at run time, ...). Spend the job-level
		// attempt budget with capped-exponential backoff before failing
		// for good.
		attempt := j.snapshot().Attempts
		if attempt >= s.limits.MaxAttempts {
			reason := ReasonRunFailed
			var le *comm.LaunchError
			if errors.As(err, &le) {
				reason = ReasonRespawnBudget
			}
			s.setState(j, StateFailed, func(m *Manifest) {
				m.Reason = reason
				m.Detail = fmt.Sprintf("attempt %d/%d: %v", attempt, s.limits.MaxAttempts, err)
				m.Finished = time.Now().UTC()
				m.PGID = 0
			})
			s.logf("job %s: failed (%s) after %d attempts: %v", rc.Manifest.ID, reason, attempt, err)
			return
		}
		wait := s.limits.RetryBackoff
		for i := 1; i < attempt && wait < 30*time.Second; i++ {
			wait *= 2
		}
		s.logf("job %s: attempt %d/%d failed (%v); retrying in %v",
			rc.Manifest.ID, attempt, s.limits.MaxAttempts, err, wait)
		select {
		case <-time.After(wait):
		case <-ctx.Done():
			// Loop once more; the cause switch above turns it terminal.
		}
	}
}

func (j *job) snapshot() Manifest {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.m
}

func (s *Server) setStatePGID(j *job, pgid int) {
	j.mu.Lock()
	j.m.PGID = pgid
	m := j.m
	j.mu.Unlock()
	if err := WriteManifest(j.dir, &m); err != nil {
		s.logf("job %s: persist pgid: %v", m.ID, err)
	}
}

// Cancel cancels a queued or running job. Typed *RejectError on conflict.
func (s *Server) Cancel(id string) error {
	s.mu.Lock()
	j := s.jobs[id]
	if j == nil {
		s.mu.Unlock()
		return reject(http.StatusNotFound, ReasonNotFound, "no job %s", id)
	}
	// Remove from the queue if still waiting.
	for i, qid := range s.queue {
		if qid == id {
			s.queue = append(s.queue[:i], s.queue[i+1:]...)
			break
		}
	}
	s.mu.Unlock()

	j.mu.Lock()
	st := j.m.State
	cancel := j.cancel
	j.mu.Unlock()
	switch {
	case st.Terminal():
		return reject(http.StatusConflict, ReasonConflict, "job %s is already %s", id, st)
	case st == StateQueued, st == StateCheckpointing:
		s.setState(j, StateCancelled, func(m *Manifest) {
			m.Reason = ReasonCancelled
			m.Detail = "cancelled before running"
			m.Finished = time.Now().UTC()
		})
		return nil
	default:
		cancel(reject(http.StatusOK, ReasonCancelled, "cancelled by operator"))
		return nil
	}
}

// Drain gracefully shuts the daemon down: admission closes (503), running
// jobs are asked to stop at their next iteration boundary with a final
// checkpoint, and Drain returns when every pool slot has settled (or ctx
// expires). Queued jobs stay queued on disk for the next daemon life.
func (s *Server) Drain(ctx context.Context) error {
	s.mu.Lock()
	s.draining = true
	s.mu.Unlock()
	s.shutdown(errDrain)
	done := make(chan struct{})
	go func() { s.wg.Wait(); close(done) }()
	select {
	case <-done:
		return nil
	case <-ctx.Done():
		return fmt.Errorf("serve: drain timed out: %w", ctx.Err())
	}
}

// Manifests returns a snapshot of every known job, newest submission
// first.
func (s *Server) Manifests() []Manifest {
	s.mu.Lock()
	jobs := make([]*job, 0, len(s.jobs))
	for _, j := range s.jobs {
		jobs = append(jobs, j)
	}
	s.mu.Unlock()
	ms := make([]Manifest, 0, len(jobs))
	for _, j := range jobs {
		ms = append(ms, j.snapshot())
	}
	sort.Slice(ms, func(i, k int) bool {
		if !ms[i].Submitted.Equal(ms[k].Submitted) {
			return ms[i].Submitted.After(ms[k].Submitted)
		}
		return ms[i].ID < ms[k].ID
	})
	return ms
}

// Manifest returns one job's snapshot.
func (s *Server) Manifest(id string) (Manifest, error) {
	s.mu.Lock()
	j := s.jobs[id]
	s.mu.Unlock()
	if j == nil {
		return Manifest{}, reject(http.StatusNotFound, ReasonNotFound, "no job %s", id)
	}
	return j.snapshot(), nil
}

// Handler returns the daemon's HTTP API.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /jobs", s.handleSubmit)
	mux.HandleFunc("GET /jobs", s.handleList)
	mux.HandleFunc("GET /jobz", s.handleList)
	mux.HandleFunc("GET /jobs/{id}", s.handleGet)
	mux.HandleFunc("POST /jobs/{id}/cancel", s.handleCancel)
	mux.HandleFunc("GET /jobs/{id}/events", s.handleEvents)
	mux.HandleFunc("GET /healthz", s.handleHealthz)
	return mux
}

func (s *Server) handleSubmit(w http.ResponseWriter, r *http.Request) {
	var spec jobspec.Spec
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, 1<<20))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&spec); err != nil {
		writeError(w, reject(http.StatusBadRequest, ReasonBadSpec, "bad spec document: %v", err))
		return
	}
	m, err := s.Submit(spec)
	if err != nil {
		writeError(w, err)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(http.StatusAccepted)
	_ = json.NewEncoder(w).Encode(m)
}

func (s *Server) handleList(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "application/json")
	_ = json.NewEncoder(w).Encode(s.Manifests())
}

func (s *Server) handleGet(w http.ResponseWriter, r *http.Request) {
	m, err := s.Manifest(r.PathValue("id"))
	if err != nil {
		writeError(w, err)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	_ = json.NewEncoder(w).Encode(m)
}

func (s *Server) handleCancel(w http.ResponseWriter, r *http.Request) {
	if err := s.Cancel(r.PathValue("id")); err != nil {
		writeError(w, err)
		return
	}
	w.WriteHeader(http.StatusNoContent)
}

func (s *Server) handleEvents(w http.ResponseWriter, r *http.Request) {
	s.mu.Lock()
	j := s.jobs[r.PathValue("id")]
	s.mu.Unlock()
	if j == nil {
		writeError(w, reject(http.StatusNotFound, ReasonNotFound, "no job %s", r.PathValue("id")))
		return
	}
	fl, ok := w.(http.Flusher)
	if !ok {
		writeError(w, reject(http.StatusNotImplemented, "no-flush", "streaming unsupported"))
		return
	}
	w.Header().Set("Content-Type", "text/event-stream")
	w.Header().Set("Cache-Control", "no-cache")
	w.WriteHeader(http.StatusOK)
	// Subscribe before the initial frame: once a client has read any frame,
	// it is guaranteed to see every event published after it.
	ch, cancelSub := j.hub.subscribe()
	defer cancelSub()
	// First frame: the job's current state, so a late subscriber is not
	// blind until the next transition.
	m := j.snapshot()
	fmt.Fprintf(w, "event: state\ndata: {\"state\":%q}\n\n", m.State)
	fl.Flush()
	for {
		select {
		case f, open := <-ch:
			if !open {
				return // terminal state: stream complete
			}
			fmt.Fprintf(w, "event: %s\ndata: %s\n\n", f.Event, f.Data)
			fl.Flush()
		case <-r.Context().Done():
			return
		}
	}
}

func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	s.mu.Lock()
	status := "ok"
	if s.draining {
		status = "draining"
	}
	body := map[string]any{
		"status": status,
		"active": s.active,
		"queued": len(s.queue),
		"jobs":   len(s.jobs),
	}
	s.mu.Unlock()
	w.Header().Set("Content-Type", "application/json")
	_ = json.NewEncoder(w).Encode(body)
}
