// Typed admission and failure reasons. Every rejection the daemon hands a
// client and every terminal failure it records carries one of these machine
//
// readable reason strings, so operators and scripts branch on the reason,
// never on prose.

package serve

import (
	"encoding/json"
	"fmt"
	"net/http"
)

// Rejection reasons (RejectError.Reason) and terminal failure reasons
// (Manifest.Reason).
const (
	// Admission rejections.
	ReasonQueueFull   = "queue-full"    // 429: the bounded queue is at capacity
	ReasonDraining    = "draining"      // 503: the daemon is shutting down
	ReasonBadSpec     = "bad-spec"      // 400: the spec does not parse or validate
	ReasonOverRankCap = "over-rank-cap" // 400: job asks for more ranks than the cap
	ReasonOverIterCap = "over-iteration-cap"
	ReasonNotFound    = "not-found" // 404
	ReasonConflict    = "conflict"  // 409: e.g. cancelling a finished job

	// Terminal failure reasons.
	ReasonWallTime      = "wall-time-exceeded"       // the per-job deadline fired
	ReasonRespawnBudget = "respawn-budget-exhausted" // ranks kept dying past every budget
	ReasonRunFailed     = "run-failed"               // the simulation itself errored
	ReasonCancelled     = "cancelled"                // operator cancellation
)

// RejectError is a typed admission rejection: an HTTP status, a stable
// machine-readable reason, and a human diagnostic. The server renders it as
// a JSON error body; tests and clients branch on Reason.
type RejectError struct {
	Status int    `json:"-"`
	Reason string `json:"reason"`
	Msg    string `json:"error"`
}

func (e *RejectError) Error() string {
	return fmt.Sprintf("serve: %s (%s)", e.Msg, e.Reason)
}

func reject(status int, reason, format string, args ...any) *RejectError {
	return &RejectError{Status: status, Reason: reason, Msg: fmt.Sprintf(format, args...)}
}

// writeError renders err as the JSON error body. Non-Reject errors become
// opaque 500s.
func writeError(w http.ResponseWriter, err error) {
	re, ok := err.(*RejectError)
	if !ok {
		re = &RejectError{Status: http.StatusInternalServerError, Reason: "internal", Msg: err.Error()}
	}
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(re.Status)
	_ = json.NewEncoder(w).Encode(re)
}
