package experiments

import (
	"io"
	"strings"
	"testing"

	"picpar/internal/particle"
	"picpar/internal/partition"
	"picpar/internal/sfc"
)

// All experiment tests run in quick mode; they assert the *shape* of the
// paper's results, not absolute numbers.

func TestTable1Shape(t *testing.T) {
	var sb strings.Builder
	res := Table1(&sb, true)
	if len(res.Rows) != 9 {
		t.Fatalf("rows %d, want 9 (3 strategies × 3 epochs)", len(res.Rows))
	}

	// Initial condition (Table 1 upper half):
	gridInit := res.Row(partition.StrategyGrid, "both", "initial").Quality
	partInit := res.Row(partition.StrategyParticle, "both", "initial").Quality
	indInit := res.Row(partition.StrategyIndependent, "both", "initial").Quality

	// Grid: field solve balanced, particle calculation unbalanced.
	if gridInit.GridImbalance > 1.05 {
		t.Errorf("grid strategy field imbalance %g", gridInit.GridImbalance)
	}
	if gridInit.ParticleImbalance < 1.5 {
		t.Errorf("grid strategy particle imbalance %g should be high", gridInit.ParticleImbalance)
	}
	// Particle: particle balanced, field solve unbalanced.
	if partInit.ParticleImbalance > 1.3 {
		t.Errorf("particle strategy particle imbalance %g", partInit.ParticleImbalance)
	}
	if partInit.GridImbalance < 1.5 {
		t.Errorf("particle strategy grid imbalance %g should be high", partInit.GridImbalance)
	}
	// Independent: both balanced, but communication non-local.
	if indInit.GridImbalance > 1.05 || indInit.ParticleImbalance > 1.3 {
		t.Errorf("independent imbalances %g/%g", indInit.GridImbalance, indInit.ParticleImbalance)
	}
	if indInit.NonLocalFraction <= gridInit.NonLocalFraction {
		t.Errorf("independent non-local %g should exceed grid %g",
			indInit.NonLocalFraction, gridInit.NonLocalFraction)
	}

	// After evolution under Lagrangian movement, particle load balance is
	// preserved for independent partitioning but ghosts grow.
	indLag := res.Row(partition.StrategyIndependent, "lagrangian", "evolved").Quality
	if indLag.ParticleImbalance > 1.3 {
		t.Errorf("lagrangian evolution broke particle balance: %g", indLag.ParticleImbalance)
	}
	if indLag.MaxGhostPoints <= indInit.MaxGhostPoints {
		t.Errorf("lagrangian evolution should grow ghosts: %d -> %d",
			indInit.MaxGhostPoints, indLag.MaxGhostPoints)
	}
	// Eulerian movement keeps grid-strategy communication local but the
	// particle imbalance persists.
	gridEul := res.Row(partition.StrategyGrid, "eulerian", "evolved").Quality
	if gridEul.NonLocalFraction > 0.05 {
		t.Errorf("eulerian grid strategy non-local %g", gridEul.NonLocalFraction)
	}
	if !strings.Contains(sb.String(), "Table 1") {
		t.Error("output missing header")
	}
}

func TestFig16Shape(t *testing.T) {
	var sb strings.Builder
	res := Fig16(&sb, true)
	if len(res.Cells) == 0 {
		t.Fatal("no cells")
	}
	// Every periodic policy must beat static (the paper: "all the periodic
	// redistribution methods significantly outperform static ones").
	for _, c := range []Fig16Case{{128, 64, 8192}, {128, 64, 16384}} {
		static := res.StaticTotal(c)
		best := res.BestPeriodicTotal(c)
		if static == 0 || best == 0 {
			t.Fatalf("missing cells for %+v", c)
		}
		if best >= static {
			t.Errorf("case %+v: best periodic %g !< static %g", c, best, static)
		}
		for _, cell := range res.Cells {
			if cell.Case == c && cell.Policy != "static" && cell.Total >= static {
				t.Errorf("case %+v: %s total %g !< static %g", c, cell.Policy, cell.Total, static)
			}
		}
	}
	// More particles cost more time under every policy.
	if res.StaticTotal(Fig16Case{128, 64, 16384}) <= res.StaticTotal(Fig16Case{128, 64, 8192}) {
		t.Error("bigger workload should take longer")
	}
}

func TestFig17to19Shape(t *testing.T) {
	res := Fig17to19(io.Discard, true)
	static := res.Find("static")
	periodic := res.Find("periodic(25)")
	if static == nil || periodic == nil {
		t.Fatal("missing series")
	}
	iters := res.Iterations

	// Figure 17: static per-iteration time rises; periodic stays lower in
	// the late phase.
	if static.MeanTimeOver(iters-50, iters) <= static.MeanTimeOver(5, 55) {
		t.Error("static iteration time did not rise")
	}
	if periodic.MeanTimeOver(iters-50, iters) >= static.MeanTimeOver(iters-50, iters) {
		t.Error("periodic late iterations should be cheaper than static")
	}
	// Figure 18: scatter data volume — same shape.
	if periodic.MeanBytesOver(iters-50, iters) >= static.MeanBytesOver(iters-50, iters) {
		t.Error("periodic late scatter bytes should be lower")
	}
	// Figure 19: scatter message counts — same shape.
	if periodic.MeanMsgsOver(iters-50, iters) >= static.MeanMsgsOver(iters-50, iters) {
		t.Error("periodic late scatter messages should be lower")
	}
}

func TestFig20Shape(t *testing.T) {
	res := Fig20(io.Discard, true)
	dyn := res.Dynamic()
	if dyn == nil {
		t.Fatal("missing dynamic cell")
	}
	best := res.BestPeriodicTotal()
	worst := res.WorstPeriodicTotal()
	// Dynamic must land close to the best periodic: within 20%, and far
	// from the worst when the spread is meaningful.
	if dyn.Total > best*1.2 {
		t.Errorf("dynamic %g too far from best periodic %g", dyn.Total, best)
	}
	if worst > best*1.15 && dyn.Total >= worst {
		t.Errorf("dynamic %g no better than worst periodic %g", dyn.Total, worst)
	}
	if dyn.NumRedist == 0 {
		t.Error("dynamic never redistributed")
	}
}

func TestTable2Shape(t *testing.T) {
	var sb strings.Builder
	res := Table2(&sb, true)

	// Computation time scales down with ranks (strict balance).
	for _, dist := range []string{particle.DistUniform, particle.DistIrregular} {
		c8 := res.Find(dist, 128, 8192, sfc.SchemeHilbert, 8)
		c32 := res.Find(dist, 128, 8192, sfc.SchemeHilbert, 32)
		if c32.Computation >= c8.Computation {
			t.Errorf("%s: computation did not scale: p=8 %g, p=32 %g", dist, c8.Computation, c32.Computation)
		}
	}

	// Hilbert overhead ≤ snake overhead in the aggregate (the paper finds
	// Hilbert better in all but the tiniest per-rank cases).
	var hil, snk float64
	for _, c := range res.Cells {
		if c.Indexing == sfc.SchemeHilbert {
			hil += c.Overhead
		} else {
			snk += c.Overhead
		}
	}
	if hil >= snk {
		t.Errorf("aggregate hilbert overhead %g should beat snake %g", hil, snk)
	}

	// Efficiencies in (0, 1]; and isogranularity: same particles/rank give
	// similar efficiency (within 25%).
	for _, c := range res.Cells {
		if c.Efficiency <= 0 || c.Efficiency > 1.001 {
			t.Errorf("efficiency %g out of range for %+v", c.Efficiency, c)
		}
	}
	e1 := res.Find(particle.DistUniform, 128, 8192, sfc.SchemeHilbert, 8)
	e2 := res.Find(particle.DistUniform, 128, 16384, sfc.SchemeHilbert, 16)
	ratio := e1.Efficiency / e2.Efficiency
	if ratio < 0.75 || ratio > 1.33 {
		t.Errorf("isogranularity violated: eff %g vs %g", e1.Efficiency, e2.Efficiency)
	}

	out := sb.String()
	for _, h := range []string{"Table 2", "Figure 21", "Figure 22", "Table 3"} {
		if !strings.Contains(out, h) {
			t.Errorf("output missing %q", h)
		}
	}
}

func TestAblationShape(t *testing.T) {
	res := Ablation(io.Discard, true)
	if res.IncrementalRedistTime >= res.FullSortRedistTime {
		t.Errorf("incremental %g should beat full sort %g",
			res.IncrementalRedistTime, res.FullSortRedistTime)
	}
	if res.DirectTotal >= res.HashTotal {
		t.Errorf("direct table %g should beat hash table %g (cheaper lookups)",
			res.DirectTotal, res.HashTotal)
	}
	if res.Dist2DScatterBytes <= 0 || res.Dist1DScatterBytes <= 0 {
		t.Error("missing scatter traffic measurements")
	}
}
