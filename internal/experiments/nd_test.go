package experiments

import (
	"io"
	"testing"

	"picpar/internal/particle"
	"picpar/internal/sfc"
)

func TestNDShape(t *testing.T) {
	res := ND(io.Discard, true)
	for _, dist := range []string{particle.DistUniform, particle.DistIrregular} {
		for _, p := range []int{8, 64} {
			h := res.Find(dist, sfc.SchemeHilbert, p)
			s := res.Find(dist, sfc.SchemeSnake, p)
			if h == nil || s == nil {
				t.Fatalf("missing cells for %s p=%d", dist, p)
			}
			if h.Quality.TotalGhostPoints >= s.Quality.TotalGhostPoints {
				t.Errorf("%s p=%d: 3-d hilbert ghosts %d !< snake %d",
					dist, p, h.Quality.TotalGhostPoints, s.Quality.TotalGhostPoints)
			}
		}
	}
	// At 64 ranks, Hilbert communication is more local than snake for the
	// uniform case.
	h := res.Find(particle.DistUniform, sfc.SchemeHilbert, 64)
	s := res.Find(particle.DistUniform, sfc.SchemeSnake, 64)
	if h.Quality.NonLocalFraction > s.Quality.NonLocalFraction {
		t.Errorf("hilbert non-local %g should not exceed snake %g",
			h.Quality.NonLocalFraction, s.Quality.NonLocalFraction)
	}
}
