package experiments

import (
	"encoding/csv"
	"fmt"
	"io"
	"strconv"
)

// Each experiment result can export its data as CSV so the figures can be
// re-plotted with external tooling. Columns mirror the quantities the
// paper plots.

// WriteCSV exports the Table 1 measurements.
func (t *Table1Result) WriteCSV(w io.Writer) error {
	cw := csv.NewWriter(w)
	if err := cw.Write([]string{"strategy", "movement", "epoch", "field_imbalance",
		"particle_imbalance", "max_ghost_points", "max_partners", "nonlocal_fraction"}); err != nil {
		return err
	}
	for _, r := range t.Rows {
		rec := []string{
			r.Strategy.String(), r.Movement, r.Epoch,
			f(r.Quality.GridImbalance), f(r.Quality.ParticleImbalance),
			strconv.Itoa(r.Quality.MaxGhostPoints), strconv.Itoa(r.Quality.MaxPartners),
			f(r.Quality.NonLocalFraction),
		}
		if err := cw.Write(rec); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}

// WriteCSV exports the Figure 16 totals.
func (f16 *Fig16Result) WriteCSV(w io.Writer) error {
	cw := csv.NewWriter(w)
	if err := cw.Write([]string{"mesh_nx", "mesh_ny", "particles", "policy",
		"total_s", "redist_s", "num_redist"}); err != nil {
		return err
	}
	for _, c := range f16.Cells {
		rec := []string{
			strconv.Itoa(c.Case.Nx), strconv.Itoa(c.Case.Ny), strconv.Itoa(c.Case.N),
			c.Policy, f(c.Total), f(c.Redist), strconv.Itoa(c.NumRedist),
		}
		if err := cw.Write(rec); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}

// WriteCSV exports the Figures 17–19 per-iteration histories (one row per
// iteration per policy).
func (f17 *Fig17Result) WriteCSV(w io.Writer) error {
	cw := csv.NewWriter(w)
	if err := cw.Write([]string{"policy", "iter", "time_s", "compute_s",
		"scatter_bytes_sent", "scatter_bytes_recv", "scatter_msgs_sent", "scatter_msgs_recv",
		"redistributed", "redist_s"}); err != nil {
		return err
	}
	for _, s := range f17.Series {
		for _, rec := range s.Records {
			row := []string{
				s.Policy, strconv.Itoa(rec.Iter), f(rec.Time), f(rec.Compute),
				strconv.FormatInt(rec.ScatterBytesSent, 10), strconv.FormatInt(rec.ScatterBytesRecv, 10),
				strconv.FormatInt(rec.ScatterMsgsSent, 10), strconv.FormatInt(rec.ScatterMsgsRecv, 10),
				strconv.FormatBool(rec.Redistributed), f(rec.RedistTime),
			}
			if err := cw.Write(row); err != nil {
				return err
			}
		}
	}
	cw.Flush()
	return cw.Error()
}

// WriteCSV exports the Figure 20 policy comparison.
func (f20 *Fig20Result) WriteCSV(w io.Writer) error {
	cw := csv.NewWriter(w)
	if err := cw.Write([]string{"policy", "exec_s", "redist_s", "total_s", "num_redist"}); err != nil {
		return err
	}
	for _, c := range f20.Cells {
		row := []string{c.Policy, f(c.Execution), f(c.Redist), f(c.Total), strconv.Itoa(c.NumRedist)}
		if err := cw.Write(row); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}

// WriteCSV exports the Table 2 grid (which also carries Figures 21–22 and
// Table 3 as columns).
func (t *Table2Result) WriteCSV(w io.Writer) error {
	cw := csv.NewWriter(w)
	if err := cw.Write([]string{"distribution", "mesh_nx", "mesh_ny", "particles",
		"indexing", "ranks", "computation_s", "total_s", "overhead_s",
		"redist_s", "num_redist", "efficiency"}); err != nil {
		return err
	}
	for _, c := range t.Cells {
		row := []string{
			c.Distribution, strconv.Itoa(c.Nx), strconv.Itoa(c.Ny), strconv.Itoa(c.N),
			c.Indexing, strconv.Itoa(c.P), f(c.Computation), f(c.Total),
			f(c.Overhead), f(c.Redist), strconv.Itoa(c.NumRedist), f(c.Efficiency),
		}
		if err := cw.Write(row); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}

// WriteCSV exports the baseline comparison.
func (b *BaselineResult) WriteCSV(w io.Writer) error {
	cw := csv.NewWriter(w)
	if err := cw.Write([]string{"method", "ranks", "total_s", "compute_s", "overhead_s"}); err != nil {
		return err
	}
	for _, c := range b.Cells {
		row := []string{c.Method, strconv.Itoa(c.P), f(c.Total), f(c.Compute), f(c.Overhead)}
		if err := cw.Write(row); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}

// WriteCSV exports the ablation measurements as key/value rows.
func (a *AblationResult) WriteCSV(w io.Writer) error {
	cw := csv.NewWriter(w)
	if err := cw.Write([]string{"metric", "value"}); err != nil {
		return err
	}
	rows := [][2]string{
		{"incremental_redist_s", f(a.IncrementalRedistTime)},
		{"full_sort_redist_s", f(a.FullSortRedistTime)},
		{"direct_table_total_s", f(a.DirectTotal)},
		{"hash_table_total_s", f(a.HashTotal)},
		{"dist2d_scatter_bytes", strconv.FormatInt(a.Dist2DScatterBytes, 10)},
		{"dist1d_scatter_bytes", strconv.FormatInt(a.Dist1DScatterBytes, 10)},
	}
	for _, r := range rows {
		if err := cw.Write(r[:]); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}

// f formats a float for CSV.
func f(v float64) string { return fmt.Sprintf("%.6g", v) }
