package experiments

import (
	"fmt"
	"io"

	"picpar/internal/particle"
	"picpar/internal/pic"
	"picpar/internal/policy"
)

// Fig17Series is one policy's per-iteration history for Figures 17–19:
// execution time, maximum scatter-phase data sent/received by any
// processor, and maximum scatter-phase message counts.
type Fig17Series struct {
	Policy  string
	Records []pic.IterationRecord
}

// Fig17Result holds the histories for the static and periodic policies.
type Fig17Result struct {
	Iterations int
	Series     []Fig17Series
}

// Fig17to19 reproduces Figures 17, 18 and 19 from a single pair of runs:
// the irregular 128×64 / 32768-particle / 32-rank configuration under the
// static policy and under periodic redistribution. The per-iteration
// histories are printed subsampled; the returned series carry every
// iteration.
func Fig17to19(w io.Writer, quick bool) *Fig17Result {
	iters, n, period := 2000, 32768, 50
	if quick {
		iters, n, period = 300, 8192, 25
	}
	const p = 32
	res := &Fig17Result{Iterations: iters}

	for _, pf := range []struct {
		name string
		f    policy.Factory
	}{
		{"static", policy.NewStatic()},
		{fmt.Sprintf("periodic(%d)", period), policy.NewPeriodic(period)},
	} {
		r := run(pic.Config{
			Grid:         grid(128, 64),
			P:            p,
			NumParticles: n,
			Distribution: particle.DistIrregular,
			Seed:         17,
			Iterations:   iters,
			Policy:       pf.f,
			Thermal:      0.4,
		})
		res.Series = append(res.Series, Fig17Series{Policy: pf.name, Records: r.Records})
	}

	step := iters / 20
	if step == 0 {
		step = 1
	}
	fmt.Fprintf(w, "Figures 17-19 (measured): per-iteration history, irregular, mesh=128x64, particles=%d, ranks=%d\n", n, p)
	fmt.Fprintf(w, "%6s", "iter")
	for _, s := range res.Series {
		fmt.Fprintf(w, " | %13s: %9s %9s %7s", s.Policy, "time(s)", "maxBytes", "maxMsgs")
	}
	fmt.Fprintln(w)
	hr(w, 6+2*46)
	for i := 0; i < iters; i += step {
		fmt.Fprintf(w, "%6d", i)
		for _, s := range res.Series {
			rec := s.Records[i]
			fmt.Fprintf(w, " | %13s  %9.4f %9d %7d", "", rec.Time, rec.ScatterBytesSent, rec.ScatterMsgsSent)
		}
		fmt.Fprintln(w)
	}
	return res
}

// Find returns the named series, or nil.
func (f *Fig17Result) Find(policy string) *Fig17Series {
	for i := range f.Series {
		if f.Series[i].Policy == policy {
			return &f.Series[i]
		}
	}
	return nil
}

// MeanTimeOver returns the mean iteration time over [lo, hi).
func (s *Fig17Series) MeanTimeOver(lo, hi int) float64 {
	t := 0.0
	for i := lo; i < hi; i++ {
		t += s.Records[i].Time
	}
	return t / float64(hi-lo)
}

// MeanBytesOver returns the mean scatter bytes sent over [lo, hi).
func (s *Fig17Series) MeanBytesOver(lo, hi int) float64 {
	t := 0.0
	for i := lo; i < hi; i++ {
		t += float64(s.Records[i].ScatterBytesSent)
	}
	return t / float64(hi-lo)
}

// MeanMsgsOver returns the mean scatter messages sent over [lo, hi).
func (s *Fig17Series) MeanMsgsOver(lo, hi int) float64 {
	t := 0.0
	for i := lo; i < hi; i++ {
		t += float64(s.Records[i].ScatterMsgsSent)
	}
	return t / float64(hi-lo)
}
