package experiments

import (
	"encoding/csv"
	"fmt"
	"io"
	"strconv"

	"picpar/internal/geom"
	"picpar/internal/mesh3"
	"picpar/internal/particle"
	"picpar/internal/partition"
	"picpar/internal/sfc"
)

// NDCell is one (distribution, scheme, ranks) measurement of the 3-D
// partitioning analysis.
type NDCell struct {
	Distribution string
	Scheme       string
	P            int
	Quality      partition.Quality
}

// NDResult holds the 3-D generalisation measurements.
type NDResult struct {
	Cells []NDCell
}

// ND demonstrates the paper's "generalizes to n dimensions" claim through
// the unified geometry seam: the same partition.BuildIndependent /
// MeasureIndependent code that produces the 2-D Table 1 numbers runs here
// over a 3-D geometry, showing that Hilbert-keyed equal-count particle
// chunks aligned with an SFC-numbered BLOCK distribution touch fewer
// off-processor grid points and communicate more locally than snake-keyed
// ones, for uniform and centre-concentrated distributions.
func ND(w io.Writer, quick bool) *NDResult {
	n := 65536
	side := 32
	ranks := []int{8, 64}
	if quick {
		n = 16384
		side = 16
		ranks = []int{8, 64}
	}
	g := mesh3.NewGrid(side, side, side)
	res := &NDResult{}

	fmt.Fprintf(w, "3-D generalisation (measured): %d particles, %d^3 mesh, independent partitioning\n", n, side)
	fmt.Fprintf(w, "%-10s %-8s %6s %10s %10s %9s %9s\n",
		"dist", "scheme", "ranks", "maxGhost", "totGhost", "partners", "nonlocal")
	hr(w, 68)

	for _, dist := range []string{particle.DistUniform, particle.DistIrregular} {
		s, err := particle.Generate3(particle.Config3{
			N: n, Lx: g.Lx, Ly: g.Ly, Lz: g.Lz,
			Distribution: dist, Seed: 55,
		})
		if err != nil {
			panic(err)
		}
		for _, scheme := range []string{sfc.SchemeHilbert, sfc.SchemeSnake} {
			for _, p := range ranks {
				d, err := mesh3.NewDistOrdered(g, p, scheme)
				if err != nil {
					panic(err)
				}
				ix, err := sfc.New3(scheme, side, side, side)
				if err != nil {
					panic(err)
				}
				ge := geom.New3(g, d, ix)
				q := partition.MeasureIndependent(ge, partition.BuildIndependent(ge, s), s)
				res.Cells = append(res.Cells, NDCell{Distribution: dist, Scheme: scheme, P: p, Quality: q})
				fmt.Fprintf(w, "%-10s %-8s %6d %10d %10d %9d %9.3f\n",
					dist, scheme, p, q.MaxGhostPoints, q.TotalGhostPoints, q.MaxPartners, q.NonLocalFraction)
			}
		}
	}
	return res
}

// Find locates a cell.
func (r *NDResult) Find(dist, scheme string, p int) *NDCell {
	for i := range r.Cells {
		c := &r.Cells[i]
		if c.Distribution == dist && c.Scheme == scheme && c.P == p {
			return c
		}
	}
	return nil
}

// WriteCSV exports the 3-D measurements.
func (r *NDResult) WriteCSV(w io.Writer) error {
	cw := csv.NewWriter(w)
	if err := cw.Write([]string{"distribution", "scheme", "ranks",
		"max_ghost_points", "total_ghost_points", "max_partners", "nonlocal_fraction"}); err != nil {
		return err
	}
	for _, c := range r.Cells {
		row := []string{
			c.Distribution, c.Scheme, strconv.Itoa(c.P),
			strconv.Itoa(c.Quality.MaxGhostPoints), strconv.Itoa(c.Quality.TotalGhostPoints),
			strconv.Itoa(c.Quality.MaxPartners), f(c.Quality.NonLocalFraction),
		}
		if err := cw.Write(row); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}
