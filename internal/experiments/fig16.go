package experiments

import (
	"fmt"
	"io"

	"picpar/internal/particle"
	"picpar/internal/pic"
)

// Fig16Case is one (mesh, particles) pair of Figure 16.
type Fig16Case struct {
	Nx, Ny, N int
}

// Fig16Cell is the total execution time of one (case, policy) run.
type Fig16Cell struct {
	Case   Fig16Case
	Policy string
	// Total is end-to-end simulated time (execution + redistribution).
	Total float64
	// Redist is time spent redistributing; NumRedist its count.
	Redist    float64
	NumRedist int
}

// Fig16Result holds all cells.
type Fig16Result struct {
	Iterations int
	Cells      []Fig16Cell
}

// Fig16 reproduces Figure 16: total execution time of a long irregular run
// on 32 ranks under the static policy and periodic redistribution at the
// paper's six periods, for three (mesh, particles) pairs.
func Fig16(w io.Writer, quick bool) *Fig16Result {
	iters := 2000
	periods := []int{200, 100, 50, 25, 10, 5}
	cases := []Fig16Case{
		{128, 64, 32768},
		{256, 128, 65536},
		{256, 128, 131072},
	}
	if quick {
		iters = 300
		periods = []int{100, 50, 25, 10, 5}
		cases = []Fig16Case{
			{128, 64, 8192},
			{128, 64, 16384},
		}
	}
	res := &Fig16Result{Iterations: iters}
	const p = 32

	fmt.Fprintf(w, "Figure 16 (measured): total execution time (s) of %d iterations on %d ranks, irregular distribution\n", iters, p)
	fmt.Fprintf(w, "%-18s", "mesh/particles")
	for _, name := range policyNames(periods) {
		fmt.Fprintf(w, " %13s", name)
	}
	fmt.Fprintln(w)
	hr(w, 18+14*(len(periods)+1))

	for _, c := range cases {
		fmt.Fprintf(w, "%4dx%-4d %8d", c.Nx, c.Ny, c.N)
		facs := policies(periods)
		names := policyNames(periods)
		for i, f := range facs {
			r := run(pic.Config{
				Grid:         grid(c.Nx, c.Ny),
				P:            p,
				NumParticles: c.N,
				Distribution: particle.DistIrregular,
				Seed:         16,
				Iterations:   iters,
				Policy:       f,
				Thermal:      0.4,
			})
			res.Cells = append(res.Cells, Fig16Cell{
				Case: c, Policy: names[i],
				Total: r.TotalTime, Redist: r.RedistTime, NumRedist: r.NumRedistributions,
			})
			fmt.Fprintf(w, " %13.2f", r.TotalTime)
		}
		fmt.Fprintln(w)
	}
	return res
}

// StaticTotal returns the static-policy total for a case.
func (f *Fig16Result) StaticTotal(c Fig16Case) float64 { return f.total(c, "static") }

// BestPeriodicTotal returns the smallest periodic total for a case.
func (f *Fig16Result) BestPeriodicTotal(c Fig16Case) float64 {
	best := 0.0
	for _, cell := range f.Cells {
		if cell.Case == c && cell.Policy != "static" {
			if best == 0 || cell.Total < best {
				best = cell.Total
			}
		}
	}
	return best
}

func (f *Fig16Result) total(c Fig16Case, pol string) float64 {
	for _, cell := range f.Cells {
		if cell.Case == c && cell.Policy == pol {
			return cell.Total
		}
	}
	return 0
}
