package experiments

import (
	"io"
	"strings"
	"testing"
)

// TestStrategiesShape asserts the layout-strategy comparison's headline
// results (quick mode): on the spike workload the cost-weighted split
// leaves strictly less per-rank busy-time imbalance than the equal-count
// split, and the adaptive policy discovers cost-weighted from the live
// cost ledger without being told.
func TestStrategiesShape(t *testing.T) {
	var sb strings.Builder
	res := Strategies(&sb, true)
	if len(res.Cells) != 6 {
		t.Fatalf("cells %d, want 6 (3 policies × 2 dims)", len(res.Cells))
	}

	for _, dims := range []int{2, 3} {
		eq := res.Find(dims, "equal-count")
		cw := res.Find(dims, "cost-weighted")
		ad := res.Find(dims, "adaptive")
		if eq == nil || cw == nil || ad == nil {
			t.Fatalf("dims %d: missing cells", dims)
		}

		// The point of the weighted split: less busy-time imbalance.
		if !(cw.BusyImbalance < eq.BusyImbalance) {
			t.Errorf("dims %d: cost-weighted busy imbalance %g not below equal-count %g",
				dims, cw.BusyImbalance, eq.BusyImbalance)
		}
		// Both redistribute on the same cadence.
		if eq.Redistributions == 0 || cw.Redistributions != eq.Redistributions {
			t.Errorf("dims %d: redistributions equal-count %d vs cost-weighted %d",
				dims, eq.Redistributions, cw.Redistributions)
		}
		// The pinned policies report what they ran.
		if got := eq.ByStrategy["equal-count"]; got != eq.Redistributions {
			t.Errorf("dims %d: equal-count ByStrategy %v", dims, eq.ByStrategy)
		}
		if got := cw.ByStrategy["cost-weighted"]; got != cw.Redistributions {
			t.Errorf("dims %d: cost-weighted ByStrategy %v", dims, cw.ByStrategy)
		}

		// The adaptive policy selects cost-weighted on its own.
		if got := ad.ByStrategy["cost-weighted"]; got < 1 {
			t.Errorf("dims %d: adaptive never chose cost-weighted: %v", dims, ad.ByStrategy)
		}
		// And reaps its balance: no worse than the pinned weighted run.
		if ad.BusyImbalance > cw.BusyImbalance*1.01 {
			t.Errorf("dims %d: adaptive busy imbalance %g above cost-weighted %g",
				dims, ad.BusyImbalance, cw.BusyImbalance)
		}
	}

	if !strings.Contains(sb.String(), "cost-weighted") {
		t.Error("table output missing cost-weighted row")
	}
}

func TestStrategiesCSV(t *testing.T) {
	res := Strategies(io.Discard, true)
	var sb strings.Builder
	if err := res.WriteCSV(&sb); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(sb.String()), "\n")
	if len(lines) != 1+len(res.Cells) {
		t.Fatalf("csv lines %d, want %d", len(lines), 1+len(res.Cells))
	}
	if !strings.HasPrefix(lines[0], "dims,strategy,busy_imbalance") {
		t.Errorf("csv header %q", lines[0])
	}
}
