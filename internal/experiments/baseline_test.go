package experiments

import (
	"io"
	"testing"
)

func TestBaselineShape(t *testing.T) {
	res := Baseline(io.Discard, true)

	// The paper's method scales: total time strictly decreases with p.
	prev := 0.0
	for _, p := range res.Ranks {
		c := res.Find("independent+dynamic", p)
		if c == nil {
			t.Fatalf("missing independent+dynamic p=%d", p)
		}
		if prev != 0 && c.Total >= prev {
			t.Errorf("independent+dynamic does not scale: p=%d total %g >= previous %g", p, c.Total, prev)
		}
		prev = c.Total
	}

	// Replicated mesh: overhead grows with p (global operations dominate)
	// and at the largest machine it loses to the paper's method.
	small := res.Find("replicated-mesh", res.Ranks[0])
	large := res.Find("replicated-mesh", res.Ranks[len(res.Ranks)-1])
	if large.Overhead <= small.Overhead {
		t.Errorf("replicated overhead should grow with p: %g -> %g", small.Overhead, large.Overhead)
	}
	best := res.Find("independent+dynamic", res.Ranks[len(res.Ranks)-1])
	if large.Total <= best.Total {
		t.Errorf("at p=%d replicated (%g) should lose to independent+dynamic (%g)",
			res.Ranks[len(res.Ranks)-1], large.Total, best.Total)
	}

	// Eulerian on an irregular density: load imbalance keeps it behind
	// the paper's method at scale.
	eul := res.Find("eulerian-grid", res.Ranks[len(res.Ranks)-1])
	if eul.Total <= best.Total {
		t.Errorf("eulerian (%g) should trail independent+dynamic (%g) on irregular input",
			eul.Total, best.Total)
	}
}
