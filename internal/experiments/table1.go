package experiments

import (
	"fmt"
	"io"

	"picpar/internal/mesh"
	"picpar/internal/particle"
	"picpar/internal/partition"
	"picpar/internal/sfc"
)

// Table1Row quantifies one (strategy, movement, epoch) cell of the paper's
// Table 1.
type Table1Row struct {
	Strategy partition.Strategy
	Movement string // "eulerian" or "lagrangian"
	Epoch    string // "initial" or "evolved"
	Quality  partition.Quality
}

// Table1Result holds all measured rows.
type Table1Result struct {
	Rows []Table1Row
}

// Table1 reproduces Table 1 as measured numbers: for each of the three
// partitioning strategies it reports the field-solve and particle load
// imbalance and the communication character (ghost volume, locality), at
// the initial irregular distribution and after the system has evolved —
// under Eulerian movement (particles reassigned to follow their cells /
// groups) and Lagrangian movement (assignment frozen).
func Table1(w io.Writer, quick bool) *Table1Result {
	n := 16384
	if quick {
		n = 4096
	}
	g := grid(64, 64)
	const p = 16
	d, err := mesh.NewDistOrdered(g, p, sfc.SchemeHilbert)
	if err != nil {
		panic(err)
	}
	ix := sfc.MustNew(sfc.SchemeHilbert, g.Nx, g.Ny)
	s, err := particle.Generate(particle.Config{
		N: n, Lx: g.Lx, Ly: g.Ly, Distribution: particle.DistIrregular, Seed: 21,
	})
	if err != nil {
		panic(err)
	}

	// Evolved positions: a diagonal drift plus spread, the qualitative
	// effect of several PIC iterations on a hot plasma.
	evolved := s.Clone()
	for i := 0; i < evolved.Len(); i++ {
		dx := 4.0 + 3.0*evolved.Px[i]/(0.05+abs(evolved.Px[i]))
		dy := 3.0 + 2.0*evolved.Py[i]/(0.05+abs(evolved.Py[i]))
		evolved.X[i], evolved.Y[i] = g.WrapPosition(evolved.X[i]+dx, evolved.Y[i]+dy)
	}

	res := &Table1Result{}
	strategies := []partition.Strategy{partition.StrategyGrid, partition.StrategyParticle, partition.StrategyIndependent}

	fmt.Fprintf(w, "Table 1 (measured): partitioning strategies, irregular distribution, %d particles, %d ranks, %dx%d mesh\n", n, p, g.Nx, g.Ny)
	fmt.Fprintf(w, "%-12s %-10s %-9s %10s %10s %10s %9s %9s\n",
		"strategy", "movement", "epoch", "fieldImb", "partImb", "maxGhost", "partners", "nonlocal")
	hr(w, 86)

	record := func(st partition.Strategy, movement, epoch string, pos *particle.Store, l *partition.Layout) {
		q := partition.Measure(l, g, d, pos)
		res.Rows = append(res.Rows, Table1Row{Strategy: st, Movement: movement, Epoch: epoch, Quality: q})
		fmt.Fprintf(w, "%-12s %-10s %-9s %10.3f %10.3f %10d %9d %9.3f\n",
			st, movement, epoch, q.GridImbalance, q.ParticleImbalance,
			q.MaxGhostPoints, q.MaxPartners, q.NonLocalFraction)
	}

	for _, st := range strategies {
		l0, err := partition.Build(st, g, d, ix, s)
		if err != nil {
			panic(err)
		}
		record(st, "both", "initial", s, l0)
		// Eulerian: re-derive the assignment at the evolved positions.
		le, err := partition.Build(st, g, d, ix, evolved)
		if err != nil {
			panic(err)
		}
		record(st, "eulerian", "evolved", evolved, le)
		// Lagrangian: keep the initial assignment (cells keep their owner,
		// particles keep theirs).
		record(st, "lagrangian", "evolved", evolved, l0)
	}
	return res
}

// Row finds a recorded row.
func (t *Table1Result) Row(st partition.Strategy, movement, epoch string) *Table1Row {
	for i := range t.Rows {
		r := &t.Rows[i]
		if r.Strategy == st && r.Movement == movement && r.Epoch == epoch {
			return r
		}
	}
	return nil
}

func abs(x float64) float64 {
	if x < 0 {
		return -x
	}
	return x
}
