package experiments

import (
	"encoding/csv"
	"strings"
	"testing"

	"picpar/internal/partition"
	"picpar/internal/pic"
)

// parse reads CSV output back and returns rows.
func parse(t *testing.T, s string) [][]string {
	t.Helper()
	rows, err := csv.NewReader(strings.NewReader(s)).ReadAll()
	if err != nil {
		t.Fatalf("invalid csv: %v", err)
	}
	return rows
}

func TestTable1CSV(t *testing.T) {
	res := &Table1Result{Rows: []Table1Row{{
		Strategy: partition.StrategyGrid, Movement: "both", Epoch: "initial",
		Quality: partition.Quality{GridImbalance: 1, ParticleImbalance: 2.5, MaxGhostPoints: 7},
	}}}
	var sb strings.Builder
	if err := res.WriteCSV(&sb); err != nil {
		t.Fatal(err)
	}
	rows := parse(t, sb.String())
	if len(rows) != 2 || rows[1][0] != "grid" || rows[1][4] != "2.5" {
		t.Errorf("rows: %v", rows)
	}
}

func TestFig16CSV(t *testing.T) {
	res := &Fig16Result{Cells: []Fig16Cell{{
		Case: Fig16Case{128, 64, 1000}, Policy: "static", Total: 12.5, NumRedist: 0,
	}}}
	var sb strings.Builder
	if err := res.WriteCSV(&sb); err != nil {
		t.Fatal(err)
	}
	rows := parse(t, sb.String())
	if len(rows) != 2 || rows[1][3] != "static" || rows[1][4] != "12.5" {
		t.Errorf("rows: %v", rows)
	}
}

func TestFig17CSV(t *testing.T) {
	res := &Fig17Result{Series: []Fig17Series{{
		Policy: "static",
		Records: []pic.IterationRecord{
			{Iter: 0, Time: 0.5, ScatterBytesSent: 100},
			{Iter: 1, Time: 0.6, ScatterBytesSent: 120, Redistributed: true, RedistTime: 0.1},
		},
	}}}
	var sb strings.Builder
	if err := res.WriteCSV(&sb); err != nil {
		t.Fatal(err)
	}
	rows := parse(t, sb.String())
	if len(rows) != 3 {
		t.Fatalf("rows %d", len(rows))
	}
	if rows[2][8] != "true" || rows[2][4] != "120" {
		t.Errorf("row: %v", rows[2])
	}
}

func TestFig20CSV(t *testing.T) {
	res := &Fig20Result{Cells: []Fig20Cell{{Policy: "dynamic", Execution: 9, Redist: 1, Total: 10, NumRedist: 3}}}
	var sb strings.Builder
	if err := res.WriteCSV(&sb); err != nil {
		t.Fatal(err)
	}
	rows := parse(t, sb.String())
	if rows[1][0] != "dynamic" || rows[1][3] != "10" || rows[1][4] != "3" {
		t.Errorf("row: %v", rows[1])
	}
}

func TestTable2CSV(t *testing.T) {
	res := &Table2Result{Cells: []Table2Cell{{
		Distribution: "uniform", Nx: 256, Ny: 128, N: 32768,
		Indexing: "hilbert", P: 32, Computation: 70, Total: 75, Overhead: 5, Efficiency: 0.9,
	}}}
	var sb strings.Builder
	if err := res.WriteCSV(&sb); err != nil {
		t.Fatal(err)
	}
	rows := parse(t, sb.String())
	if rows[1][4] != "hilbert" || rows[1][11] != "0.9" {
		t.Errorf("row: %v", rows[1])
	}
}

func TestBaselineCSV(t *testing.T) {
	res := &BaselineResult{Cells: []BaselineCell{{Method: "replicated-mesh", P: 8, Total: 20}}}
	var sb strings.Builder
	if err := res.WriteCSV(&sb); err != nil {
		t.Fatal(err)
	}
	rows := parse(t, sb.String())
	if rows[1][0] != "replicated-mesh" || rows[1][2] != "20" {
		t.Errorf("row: %v", rows[1])
	}
}

func TestAblationCSV(t *testing.T) {
	res := &AblationResult{IncrementalRedistTime: 0.5, FullSortRedistTime: 1.5, Dist2DScatterBytes: 100}
	var sb strings.Builder
	if err := res.WriteCSV(&sb); err != nil {
		t.Fatal(err)
	}
	rows := parse(t, sb.String())
	if len(rows) != 7 {
		t.Fatalf("rows %d, want 7", len(rows))
	}
	if rows[1][0] != "incremental_redist_s" || rows[1][1] != "0.5" {
		t.Errorf("row: %v", rows[1])
	}
}
