package experiments

import (
	"fmt"
	"io"

	"picpar/internal/particle"
	"picpar/internal/pic"
	"picpar/internal/policy"
	"picpar/internal/replicated"
)

// BaselineCell is one (method, ranks) measurement.
type BaselineCell struct {
	Method   string // "independent+dynamic", "eulerian", "replicated"
	P        int
	Total    float64
	Compute  float64
	Overhead float64
}

// BaselineResult compares the paper's method against the two prior-art
// baselines of Section 3.
type BaselineResult struct {
	Ranks []int
	Cells []BaselineCell
}

// Baseline reproduces the scalability argument of the paper's Section 3:
// the replicated-mesh direct Lagrangian code (Lubeck–Faber) is dominated by
// global operations on the whole mesh as the machine grows; the direct
// Eulerian grid-partitioned code (Gledhill–Storey) keeps communication
// local but its particle load follows the irregular density; the paper's
// independent partitioning with dynamic redistribution scales.
func Baseline(w io.Writer, quick bool) *BaselineResult {
	iters, n := 100, 16384
	ranks := []int{4, 8, 16, 32}
	if quick {
		iters, n = 50, 8192
		ranks = []int{4, 16, 32}
	}
	res := &BaselineResult{Ranks: ranks}
	g := grid(128, 64)

	fmt.Fprintf(w, "Section 3 baselines (measured): %d iterations, irregular, mesh=128x64, particles=%d\n", iters, n)
	fmt.Fprintf(w, "%-22s %6s %12s %12s %12s %12s\n", "method", "ranks", "total(s)", "compute(s)", "overhead(s)", "efficiency")
	hr(w, 82)

	for _, p := range ranks {
		base := pic.Config{
			Grid:         g,
			P:            p,
			NumParticles: n,
			Distribution: particle.DistIrregular,
			Seed:         33,
			Iterations:   iters,
			Thermal:      0.4,
		}

		// The paper's method.
		cfg := base
		cfg.Policy = policy.NewDynamic()
		r := run(cfg)
		res.add(w, "independent+dynamic", p, r.TotalTime, r.ComputeMax, r.Overhead, r.Efficiency)

		// Direct Eulerian on grid partitioning.
		cfg = base
		cfg.Eulerian = true
		r = run(cfg)
		res.add(w, "eulerian-grid", p, r.TotalTime, r.ComputeMax, r.Overhead, r.Efficiency)

		// Replicated mesh (Lubeck–Faber).
		rr, err := replicated.Run(base)
		if err != nil {
			panic(err)
		}
		res.add(w, "replicated-mesh", p, rr.TotalTime, rr.ComputeMax, rr.Overhead, rr.Efficiency)
	}
	return res
}

func (b *BaselineResult) add(w io.Writer, method string, p int, total, comp, over, eff float64) {
	b.Cells = append(b.Cells, BaselineCell{Method: method, P: p, Total: total, Compute: comp, Overhead: over})
	fmt.Fprintf(w, "%-22s %6d %12.2f %12.2f %12.2f %12.3f\n", method, p, total, comp, over, eff)
}

// Find locates a cell.
func (b *BaselineResult) Find(method string, p int) *BaselineCell {
	for i := range b.Cells {
		if b.Cells[i].Method == method && b.Cells[i].P == p {
			return &b.Cells[i]
		}
	}
	return nil
}
