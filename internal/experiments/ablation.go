package experiments

import (
	"fmt"
	"io"
	"math"
	"math/rand"
	"sync"

	"picpar/internal/comm"
	"picpar/internal/commopt"
	"picpar/internal/machine"
	"picpar/internal/particle"
	"picpar/internal/pic"
	"picpar/internal/policy"
	"picpar/internal/psort"
)

// AblationResult holds the design-choice ablations called out in DESIGN.md.
type AblationResult struct {
	// IncrementalRedistTime and FullSortRedistTime compare the bucket
	// incremental sort against a full sample sort for one redistribution
	// of a drifted population (the paper's Figure 11 claim).
	IncrementalRedistTime float64
	FullSortRedistTime    float64
	// DirectTotal and HashTotal compare total simulation time under the
	// two duplicate-removal structures.
	DirectTotal float64
	HashTotal   float64
	// Dist2DScatterBytes and Dist1DScatterBytes compare peak scatter
	// traffic under 2-D vs 1-D mesh BLOCK distribution.
	Dist2DScatterBytes int64
	Dist1DScatterBytes int64
}

// Ablation measures the three design-choice ablations.
func Ablation(w io.Writer, quick bool) *AblationResult {
	iters, n := 100, 32768
	if quick {
		iters, n = 60, 8192
	}
	const p = 32
	res := &AblationResult{}

	// --- Incremental vs full re-sort for one redistribution ---
	res.IncrementalRedistTime = measureRedist(p, n, true)
	res.FullSortRedistTime = measureRedist(p, n, false)

	// --- Hash vs direct duplicate-removal table ---
	mk := func(table string) *pic.Result {
		return run(pic.Config{
			Grid:         grid(128, 64),
			P:            p,
			NumParticles: n,
			Distribution: particle.DistIrregular,
			Seed:         30,
			Iterations:   iters,
			Policy:       policy.NewPeriodic(20),
			Table:        table,
			Thermal:      0.4,
		})
	}
	res.DirectTotal = mk(commopt.TableDirect).TotalTime
	res.HashTotal = mk(commopt.TableHash).TotalTime

	// --- 2-D vs 1-D mesh BLOCK distribution ---
	mkDist := func(oneD bool) *pic.Result {
		return run(pic.Config{
			Grid:         grid(128, 64),
			P:            p,
			NumParticles: n,
			Distribution: particle.DistUniform,
			Seed:         31,
			Iterations:   iters / 2,
			Policy:       policy.NewPeriodic(20),
			MeshDist1D:   oneD,
			Thermal:      0.4,
		})
	}
	res.Dist2DScatterBytes = mkDist(false).MaxScatterBytes()
	res.Dist1DScatterBytes = mkDist(true).MaxScatterBytes()

	fmt.Fprintln(w, "Ablations (measured):")
	fmt.Fprintf(w, "  redistribution of a drifted population (%d particles, %d ranks):\n", n, p)
	fmt.Fprintf(w, "    bucket incremental sort: %10.4f s\n", res.IncrementalRedistTime)
	fmt.Fprintf(w, "    full sample sort:        %10.4f s\n", res.FullSortRedistTime)
	fmt.Fprintf(w, "  duplicate-removal table (total time, %d iters):\n", iters)
	fmt.Fprintf(w, "    direct address table:    %10.2f s\n", res.DirectTotal)
	fmt.Fprintf(w, "    hash table:              %10.2f s\n", res.HashTotal)
	fmt.Fprintf(w, "  mesh BLOCK distribution (peak scatter bytes/iter):\n")
	fmt.Fprintf(w, "    2-D blocks:              %10d B\n", res.Dist2DScatterBytes)
	fmt.Fprintf(w, "    1-D rows:                %10d B\n", res.Dist1DScatterBytes)
	return res
}

// measureRedist builds a sorted population, drifts the keys slightly, and
// times one redistribution via the incremental sort or a full sample sort.
func measureRedist(p, n int, incremental bool) float64 {
	perRank := n / p
	var mu sync.Mutex
	maxTime := 0.0
	comm.Launch(p, machine.CM5(), func(r comm.Transport) {
		rng := rand.New(rand.NewSource(int64(40 + r.Rank())))
		s := particle.NewStore(perRank, -1, 1)
		for i := 0; i < perRank; i++ {
			s.Append(0, 0, 0, 0, 0, float64(r.Rank()*perRank+i))
			s.Key[s.Len()-1] = math.Floor(rng.Float64() * 8192)
		}
		s = psort.SampleSort(r, s)
		inc := psort.NewIncremental(0)
		inc.Prime(s)
		for i := 0; i < s.Len(); i++ {
			s.Key[i] = math.Max(0, s.Key[i]+math.Floor(rng.Float64()*10-5))
		}
		comm.Barrier(r)
		t0 := r.Clock().Now()
		if incremental {
			s, _ = inc.Redistribute(r, s)
		} else {
			s = psort.SampleSort(r, s)
		}
		comm.Barrier(r)
		elapsed := r.Clock().Now() - t0
		mu.Lock()
		if elapsed > maxTime {
			maxTime = elapsed
		}
		mu.Unlock()
	})
	return maxTime
}
