package experiments

import (
	"fmt"
	"io"

	"picpar/internal/particle"
	"picpar/internal/pic"
	"picpar/internal/policy"
)

// Fig20Cell is one policy's outcome in the periodic-vs-dynamic comparison.
type Fig20Cell struct {
	Policy    string
	Execution float64 // total − redistribution
	Redist    float64
	Total     float64
	NumRedist int
}

// Fig20Result holds all policies' outcomes.
type Fig20Result struct {
	Iterations int
	Cells      []Fig20Cell
}

// Fig20 reproduces Figure 20: a 200-iteration irregular run under periodic
// redistribution at the paper's six periods and under the dynamic
// (Stop-At-Rise) policy, reporting execution and redistribution cost
// separately. The paper's claim: dynamic lands close to the best periodic
// period without tuning, while too-frequent periodic pays redistribution
// overhead.
func Fig20(w io.Writer, quick bool) *Fig20Result {
	iters, n := 200, 32768
	periods := []int{200, 100, 50, 25, 10, 5}
	if quick {
		iters, n = 150, 8192
		periods = []int{100, 50, 25, 10, 5}
	}
	const p = 32
	res := &Fig20Result{Iterations: iters}

	type entry struct {
		name string
		f    policy.Factory
	}
	entries := []entry{}
	for i, f := range policies(periods) {
		entries = append(entries, entry{policyNames(periods)[i], f})
	}
	entries = append(entries, entry{"dynamic", policy.NewDynamic()})

	fmt.Fprintf(w, "Figure 20 (measured): %d iterations, irregular, mesh=128x64, particles=%d, ranks=%d\n", iters, n, p)
	fmt.Fprintf(w, "%-14s %12s %12s %12s %8s\n", "policy", "exec(s)", "redist(s)", "total(s)", "#redist")
	hr(w, 62)
	for _, e := range entries {
		r := run(pic.Config{
			Grid:         grid(128, 64),
			P:            p,
			NumParticles: n,
			Distribution: particle.DistIrregular,
			Seed:         20,
			Iterations:   iters,
			Policy:       e.f,
			Thermal:      0.4,
		})
		cell := Fig20Cell{
			Policy:    e.name,
			Execution: r.TotalTime - r.RedistTime,
			Redist:    r.RedistTime,
			Total:     r.TotalTime,
			NumRedist: r.NumRedistributions,
		}
		res.Cells = append(res.Cells, cell)
		fmt.Fprintf(w, "%-14s %12.2f %12.2f %12.2f %8d\n",
			cell.Policy, cell.Execution, cell.Redist, cell.Total, cell.NumRedist)
	}
	return res
}

// Dynamic returns the dynamic policy's cell.
func (f *Fig20Result) Dynamic() *Fig20Cell { return f.find("dynamic") }

// Static returns the static policy's cell (nil in quick mode variants
// without it).
func (f *Fig20Result) Static() *Fig20Cell { return f.find("static") }

func (f *Fig20Result) find(name string) *Fig20Cell {
	for i := range f.Cells {
		if f.Cells[i].Policy == name {
			return &f.Cells[i]
		}
	}
	return nil
}

// BestPeriodicTotal returns the best periodic policy's total time.
func (f *Fig20Result) BestPeriodicTotal() float64 {
	best := 0.0
	for _, c := range f.Cells {
		if c.Policy != "dynamic" && c.Policy != "static" {
			if best == 0 || c.Total < best {
				best = c.Total
			}
		}
	}
	return best
}

// WorstPeriodicTotal returns the worst periodic policy's total time.
func (f *Fig20Result) WorstPeriodicTotal() float64 {
	worst := 0.0
	for _, c := range f.Cells {
		if c.Policy != "dynamic" && c.Policy != "static" && c.Total > worst {
			worst = c.Total
		}
	}
	return worst
}
