package experiments

import (
	"fmt"
	"io"

	"picpar/internal/particle"
	"picpar/internal/pic"
	"picpar/internal/policy"
	"picpar/internal/sfc"
)

// Table2Cell is one run of the indexing-scheme comparison grid.
type Table2Cell struct {
	Distribution string
	Nx, Ny, N    int
	Indexing     string
	P            int

	Computation float64 // Table 2: computation time on the critical path
	Total       float64 // end-to-end execution time
	Overhead    float64 // Figures 21/22: Total − Computation
	Redist      float64 // redistribution share of the overhead
	NumRedist   int
	Efficiency  float64 // Table 3
}

// Table2Result holds the whole grid; Figures 21, 22 and Table 3 are views
// over it.
type Table2Result struct {
	Iterations int
	Ranks      []int
	Cells      []Table2Cell
}

// Table2 reproduces Table 2 (computational time, Hilbert vs snakelike
// indexing, dynamic redistribution, 200 iterations), and as views over the
// same runs Figure 21 (overhead, uniform), Figure 22 (overhead, irregular)
// and Table 3 (efficiency of the Hilbert scheme).
func Table2(w io.Writer, quick bool) *Table2Result {
	iters := 200
	ranks := []int{32, 64, 128}
	type combo struct{ nx, ny, n int }
	combos := []combo{
		{256, 128, 32768},
		{256, 128, 65536},
		{512, 256, 65536},
		{512, 256, 131072},
	}
	if quick {
		iters = 100
		ranks = []int{8, 16, 32}
		combos = []combo{
			{128, 64, 8192},
			{128, 64, 16384},
		}
	}
	res := &Table2Result{Iterations: iters, Ranks: ranks}
	indexings := []string{sfc.SchemeHilbert, sfc.SchemeSnake}
	dists := []string{particle.DistUniform, particle.DistIrregular}

	for _, dist := range dists {
		for _, c := range combos {
			for _, ix := range indexings {
				for _, p := range ranks {
					r := run(pic.Config{
						Grid:         grid(c.nx, c.ny),
						P:            p,
						NumParticles: c.n,
						Distribution: dist,
						Seed:         22,
						Iterations:   iters,
						Indexing:     ix,
						Policy:       policy.NewDynamic(),
						Thermal:      0.4,
					})
					res.Cells = append(res.Cells, Table2Cell{
						Distribution: dist,
						Nx:           c.nx, Ny: c.ny, N: c.n,
						Indexing:    ix,
						P:           p,
						Computation: r.ComputeMax,
						Total:       r.TotalTime,
						Overhead:    r.Overhead,
						Redist:      r.RedistTime,
						NumRedist:   r.NumRedistributions,
						Efficiency:  r.Efficiency,
					})
				}
			}
		}
	}

	res.printTable2(w)
	res.printOverhead(w, particle.DistUniform, "Figure 21")
	res.printOverhead(w, particle.DistIrregular, "Figure 22")
	res.printTable3(w)
	return res
}

func (t *Table2Result) printTable2(w io.Writer) {
	fmt.Fprintf(w, "Table 2 (measured): computational time (s) of %d iterations, dynamic redistribution\n", t.Iterations)
	fmt.Fprintf(w, "%-10s %-10s %9s %-8s", "dist", "mesh", "particles", "indexing")
	for _, p := range t.Ranks {
		fmt.Fprintf(w, " %10s", fmt.Sprintf("p=%d", p))
	}
	fmt.Fprintln(w)
	hr(w, 40+11*len(t.Ranks))
	t.eachRow(func(dist string, nx, ny, n int, ix string) {
		fmt.Fprintf(w, "%-10s %4dx%-5d %9d %-8s", dist, nx, ny, n, ix)
		for _, p := range t.Ranks {
			c := t.Find(dist, nx, n, ix, p)
			fmt.Fprintf(w, " %10.2f", c.Computation)
		}
		fmt.Fprintln(w)
	})
	fmt.Fprintln(w)
}

func (t *Table2Result) printOverhead(w io.Writer, dist, label string) {
	fmt.Fprintf(w, "%s (measured): overhead = execution − computation (s), %s distribution\n", label, dist)
	fmt.Fprintf(w, "%-10s %9s %-8s", "mesh", "particles", "indexing")
	for _, p := range t.Ranks {
		fmt.Fprintf(w, " %10s", fmt.Sprintf("p=%d", p))
	}
	fmt.Fprintln(w)
	hr(w, 29+11*len(t.Ranks))
	t.eachRow(func(d string, nx, ny, n int, ix string) {
		if d != dist {
			return
		}
		fmt.Fprintf(w, "%4dx%-5d %9d %-8s", nx, ny, n, ix)
		for _, p := range t.Ranks {
			c := t.Find(dist, nx, n, ix, p)
			fmt.Fprintf(w, " %10.2f", c.Overhead)
		}
		fmt.Fprintln(w)
	})
	fmt.Fprintln(w)
}

func (t *Table2Result) printTable3(w io.Writer) {
	fmt.Fprintln(w, "Table 3 (measured): efficiency of the Hilbert indexing scheme")
	fmt.Fprintf(w, "%-10s %-10s %9s", "dist", "mesh", "particles")
	for _, p := range t.Ranks {
		fmt.Fprintf(w, " %8s", fmt.Sprintf("p=%d", p))
	}
	fmt.Fprintln(w)
	hr(w, 31+9*len(t.Ranks))
	t.eachRow(func(dist string, nx, ny, n int, ix string) {
		if ix != sfc.SchemeHilbert {
			return
		}
		fmt.Fprintf(w, "%-10s %4dx%-5d %9d", dist, nx, ny, n)
		for _, p := range t.Ranks {
			c := t.Find(dist, nx, n, sfc.SchemeHilbert, p)
			fmt.Fprintf(w, " %8.3f", c.Efficiency)
		}
		fmt.Fprintln(w)
	})
	fmt.Fprintln(w)
}

// eachRow walks the distinct (dist, combo, indexing) rows in insertion
// order.
func (t *Table2Result) eachRow(f func(dist string, nx, ny, n int, ix string)) {
	seen := map[string]bool{}
	for _, c := range t.Cells {
		key := fmt.Sprintf("%s/%d/%d/%s", c.Distribution, c.Nx, c.N, c.Indexing)
		if seen[key] {
			continue
		}
		seen[key] = true
		f(c.Distribution, c.Nx, c.Ny, c.N, c.Indexing)
	}
}

// Find locates a cell; it panics if absent (experiment grids are static).
func (t *Table2Result) Find(dist string, nx, n int, ix string, p int) *Table2Cell {
	for i := range t.Cells {
		c := &t.Cells[i]
		if c.Distribution == dist && c.Nx == nx && c.N == n && c.Indexing == ix && c.P == p {
			return c
		}
	}
	panic(fmt.Sprintf("experiments: no cell %s %d %d %s %d", dist, nx, n, ix, p))
}
