// Package experiments regenerates every table and figure of the paper's
// evaluation section (Section 6) from the simulation in internal/pic, plus
// the ablations called out in DESIGN.md. Each experiment prints a
// paper-style text table to an io.Writer and returns its numbers in a
// structured form so tests and benchmarks can assert on the shape of the
// results (who wins, where the crossovers fall).
//
// Every experiment takes a quick flag: quick runs shrink particle counts
// and iteration counts to keep the whole suite in CI-friendly time while
// preserving the qualitative shape; full runs use the paper's sizes
// (2000-iteration histories, up to 131072 particles, up to 128 ranks).
package experiments

import (
	"fmt"
	"io"

	"picpar/internal/mesh"
	"picpar/internal/pic"
	"picpar/internal/policy"
)

// run executes a simulation, converting errors to panics: experiment
// configurations are code, not user input.
func run(cfg pic.Config) *pic.Result {
	res, err := pic.Run(cfg)
	if err != nil {
		panic(fmt.Sprintf("experiments: %v", err))
	}
	return res
}

// policies returns the paper's standard policy sweep: static plus periodic
// redistribution at the given periods.
func policies(periods []int) []policy.Factory {
	out := []policy.Factory{policy.NewStatic()}
	for _, k := range periods {
		out = append(out, policy.NewPeriodic(k))
	}
	return out
}

// policyNames mirrors policies for labelling.
func policyNames(periods []int) []string {
	out := []string{"static"}
	for _, k := range periods {
		out = append(out, fmt.Sprintf("periodic(%d)", k))
	}
	return out
}

// grid is shorthand for the experiment mesh sizes.
func grid(nx, ny int) mesh.Grid { return mesh.NewGrid(nx, ny) }

// hr prints a horizontal rule.
func hr(w io.Writer, n int) {
	for i := 0; i < n; i++ {
		fmt.Fprint(w, "-")
	}
	fmt.Fprintln(w)
}
