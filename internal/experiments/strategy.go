package experiments

import (
	"encoding/csv"
	"fmt"
	"io"
	"sort"
	"strconv"

	"picpar/internal/mesh3"
	"picpar/internal/particle"
	"picpar/internal/pic"
	"picpar/internal/policy"
)

// StrategyCell is one (dims, strategy) measurement of the layout-strategy
// comparison on the skewed spike workload.
type StrategyCell struct {
	Dims     int
	Strategy string // "equal-count", "cost-weighted" or "adaptive"
	// BusyImbalance is the mean over settled iterations of the per-rank
	// busy-time max/mean (1.0 = perfectly balanced).
	BusyImbalance float64
	// TotalTime is the end-to-end simulated time, redistributions included.
	TotalTime float64
	// Redistributions counts successful redistributions; ByStrategy breaks
	// them down per chosen layout (interesting under the adaptive policy).
	Redistributions int
	ByStrategy      map[string]int
}

// StrategyResult holds the comparison's measurements.
type StrategyResult struct {
	Cells []StrategyCell
}

// Strategies compares the particle layout strategies on the spike
// distribution — a dense Gaussian clump over a sparse background, the
// workload where per-particle cost is genuinely heterogeneous (background
// particles straddle mesh blocks and pay more ghost traffic each). It runs
// equal-count and cost-weighted splits under the same periodic cadence,
// plus the adaptive policy choosing from the live cost ledger, in 2-D and
// 3-D. The headline numbers: cost-weighted cuts the per-rank busy-time
// imbalance the equal-count split leaves on the table, and the adaptive
// policy discovers that on its own (its redistributions land on
// cost-weighted), at the price of some extra total traffic from the
// misaligned split — the balance-versus-locality trade-off.
func Strategies(w io.Writer, quick bool) *StrategyResult {
	n := 4096
	iters2, iters3 := 60, 40
	if quick {
		iters2, iters3 = 30, 20
	}
	const p = 8
	const period = 5

	res := &StrategyResult{}
	fmt.Fprintf(w, "Layout strategies (measured): spike distribution, %d particles, %d ranks\n", n, p)
	fmt.Fprintf(w, "%-5s %-14s %9s %10s %8s  %s\n",
		"dims", "policy", "busyImb", "totalTime", "redists", "byStrategy")
	hr(w, 72)

	specs := []struct {
		name string
		pol  func() policy.Factory
	}{
		{"equal-count", func() policy.Factory {
			return policy.WithStrategy(policy.NewPeriodic(period), policy.EqualCount)
		}},
		{"cost-weighted", func() policy.Factory {
			return policy.WithStrategy(policy.NewPeriodic(period), policy.CostWeighted)
		}},
		{"adaptive", func() policy.Factory { return policy.NewAdaptiveEvery(period) }},
	}

	for _, dims := range []int{2, 3} {
		iters := iters2
		if dims == 3 {
			iters = iters3
		}
		for _, spec := range specs {
			cfg := pic.Config{
				Dims:         dims,
				P:            p,
				NumParticles: n,
				Distribution: particle.DistSpike,
				Seed:         11,
				Iterations:   iters,
				Policy:       spec.pol(),
			}
			if dims == 2 {
				cfg.Grid = grid(128, 64)
			} else {
				cfg.Grid3 = mesh3.NewGrid(16, 16, 16)
			}
			r := run(cfg)
			cell := StrategyCell{
				Dims:            dims,
				Strategy:        spec.name,
				BusyImbalance:   meanBusyImbalance(r, iters/3),
				TotalTime:       r.TotalTime,
				Redistributions: r.NumRedistributions,
				ByStrategy:      r.RedistByStrategy,
			}
			res.Cells = append(res.Cells, cell)
			fmt.Fprintf(w, "%-5d %-14s %9.4f %10.4f %8d  %s\n",
				dims, spec.name, cell.BusyImbalance, cell.TotalTime,
				cell.Redistributions, formatByStrategy(cell.ByStrategy))
		}
	}
	return res
}

// meanBusyImbalance averages the per-iteration busy-time imbalance over the
// settled tail of the run (after `warmup` iterations), skipping iterations
// a redistribution perturbed.
func meanBusyImbalance(r *pic.Result, warmup int) float64 {
	sum, n := 0.0, 0
	for i := warmup; i < len(r.Records); i++ {
		sum += r.Records[i].BusyImbalance
		n++
	}
	if n == 0 {
		return 0
	}
	return sum / float64(n)
}

// formatByStrategy renders the per-strategy redistribution counts in a
// stable order.
func formatByStrategy(m map[string]int) string {
	if len(m) == 0 {
		return "-"
	}
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	s := ""
	for i, k := range keys {
		if i > 0 {
			s += " "
		}
		s += fmt.Sprintf("%s:%d", k, m[k])
	}
	return s
}

// Find locates a cell.
func (r *StrategyResult) Find(dims int, strategy string) *StrategyCell {
	for i := range r.Cells {
		c := &r.Cells[i]
		if c.Dims == dims && c.Strategy == strategy {
			return c
		}
	}
	return nil
}

// WriteCSV exports the comparison.
func (r *StrategyResult) WriteCSV(w io.Writer) error {
	cw := csv.NewWriter(w)
	if err := cw.Write([]string{"dims", "strategy", "busy_imbalance",
		"total_time", "redistributions", "by_strategy"}); err != nil {
		return err
	}
	for _, c := range r.Cells {
		row := []string{
			strconv.Itoa(c.Dims), c.Strategy, f(c.BusyImbalance),
			f(c.TotalTime), strconv.Itoa(c.Redistributions), formatByStrategy(c.ByStrategy),
		}
		if err := cw.Write(row); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}
