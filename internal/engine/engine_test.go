package engine

import (
	"reflect"
	"testing"
)

// recorder logs phase and hook events in order.
type recorder struct{ events []string }

func (rec *recorder) phase(name string) Phase {
	return PhaseFunc{Label: name, Fn: func(iter int) {
		rec.events = append(rec.events, name)
	}}
}

type recordingHook struct {
	rec  *recorder
	name string
}

func (h recordingHook) Before(p Phase, iter int) {
	h.rec.events = append(h.rec.events, h.name+":before:"+p.Name())
}
func (h recordingHook) After(p Phase, iter int) {
	h.rec.events = append(h.rec.events, h.name+":after:"+p.Name())
}

func TestPipelineStepOrder(t *testing.T) {
	rec := &recorder{}
	pipe := New(rec.phase("a"), rec.phase("b"), rec.phase("c"))
	pipe.Step(0)
	pipe.Step(1)
	want := []string{"a", "b", "c", "a", "b", "c"}
	if !reflect.DeepEqual(rec.events, want) {
		t.Errorf("events = %v, want %v", rec.events, want)
	}
}

func TestPipelineHooksSurroundEveryPhase(t *testing.T) {
	rec := &recorder{}
	pipe := New(rec.phase("a"), rec.phase("b"))
	pipe.AddHook(recordingHook{rec, "h"})
	pipe.Step(0)
	want := []string{
		"h:before:a", "a", "h:after:a",
		"h:before:b", "b", "h:after:b",
	}
	if !reflect.DeepEqual(rec.events, want) {
		t.Errorf("events = %v, want %v", rec.events, want)
	}
}

func TestRunPhaseOutOfPipeline(t *testing.T) {
	// Post-iteration phases are run individually, still surrounded by the
	// pipeline's hooks.
	rec := &recorder{}
	pipe := New(rec.phase("a"))
	pipe.AddHook(recordingHook{rec, "h"})
	post := rec.phase("post")
	pipe.RunPhase(post, 3)
	want := []string{"h:before:post", "post", "h:after:post"}
	if !reflect.DeepEqual(rec.events, want) {
		t.Errorf("events = %v, want %v", rec.events, want)
	}
}

func TestPhaseFuncReceivesIter(t *testing.T) {
	var got []int
	pipe := New(PhaseFunc{Label: "p", Fn: func(iter int) { got = append(got, iter) }})
	for iter := 5; iter < 8; iter++ {
		pipe.Step(iter)
	}
	if !reflect.DeepEqual(got, []int{5, 6, 7}) {
		t.Errorf("iters = %v, want [5 6 7]", got)
	}
}

func TestTriggers(t *testing.T) {
	if !(Always{}).Decide(0, 1.0) {
		t.Error("Always must fire")
	}
	if (Never{}).Decide(0, 1.0) {
		t.Error("Never must not fire")
	}
}

func TestPhasesAccessor(t *testing.T) {
	a := PhaseFunc{Label: "a", Fn: func(int) {}}
	b := PhaseFunc{Label: "b", Fn: func(int) {}}
	pipe := New(a, b)
	names := []string{}
	for _, p := range pipe.Phases() {
		names = append(names, p.Name())
	}
	if !reflect.DeepEqual(names, []string{"a", "b"}) {
		t.Errorf("phases = %v, want [a b]", names)
	}
}
