// Package engine is the middle layer of the stack: the phase-pipeline
// abstraction of a PIC time step. A simulation mode is a composition of
// Phase values (scatter, field solve, gather/push, …) run by a Pipeline,
// plus an optional post-iteration phase (migrate or redistribute) guarded
// by a Trigger. The Lagrangian mode, the Eulerian mode and the
// replicated-mesh baseline are alternate compositions of the same
// machinery rather than parallel code paths.
//
// The engine layer knows nothing about how messages move: phases are
// written against comm.Transport, and the pipeline itself is
// communication-agnostic.
package engine

// Phase is one stage of a simulation time step. Run is called once per
// iteration with the iteration index; implementations do their own phase
// accounting (SetPhase) and communication.
type Phase interface {
	// Name identifies the phase, e.g. for hooks and diagnostics.
	Name() string
	// Run executes the phase for iteration iter.
	Run(iter int)
}

// PhaseFunc adapts a function to the Phase interface.
type PhaseFunc struct {
	Label string
	Fn    func(iter int)
}

// Name implements Phase.
func (p PhaseFunc) Name() string { return p.Label }

// Run implements Phase.
func (p PhaseFunc) Run(iter int) { p.Fn(iter) }

// Hook observes phase execution. Before runs immediately before a phase,
// After immediately after; hooks run in registration order (After in the
// same order, not reversed, so a hook pairs with the phase it follows).
type Hook interface {
	Before(phase Phase, iter int)
	After(phase Phase, iter int)
}

// Trigger decides whether the pipeline's post-iteration phase runs after
// iteration iter, given the iteration's measured (simulated) duration.
// policy.Policy satisfies it; Always is the degenerate trigger for modes
// whose post phase runs unconditionally.
//
// Failure contract: a post phase may fail without aborting the run when the
// transport is degradable (comm.Degradable — a reliability layer recording
// delivery failures instead of raising them). The driver then discards the
// phase's partial effects, keeps the previous state, and charges the wasted
// attempt time — but does NOT feed the attempt back to the trigger (for
// policy.Policy, NotifyRedistribution is not called). The trigger therefore
// still sees the degraded load balance and fires again at its next
// opportunity: failed attempts are retried, never silently consumed. See
// pic's attemptRedistribute for the canonical implementation.
type Trigger interface {
	Decide(iter int, iterTime float64) bool
}

// Always is a Trigger that always fires — e.g. Eulerian migration, which
// runs every iteration regardless of cost.
type Always struct{}

// Decide implements Trigger.
func (Always) Decide(int, float64) bool { return true }

// Never is a Trigger that never fires.
type Never struct{}

// Decide implements Trigger.
func (Never) Decide(int, float64) bool { return false }

// Pipeline runs an ordered list of phases with before/after hooks.
type Pipeline struct {
	phases []Phase
	hooks  []Hook
}

// New builds a pipeline over the given phases.
func New(phases ...Phase) *Pipeline {
	return &Pipeline{phases: phases}
}

// AddHook registers h to observe every phase this pipeline runs.
func (p *Pipeline) AddHook(h Hook) { p.hooks = append(p.hooks, h) }

// Phases returns the pipeline's phases in execution order.
func (p *Pipeline) Phases() []Phase { return p.phases }

// Step runs every phase once, in order, for iteration iter.
func (p *Pipeline) Step(iter int) {
	for _, ph := range p.phases {
		p.RunPhase(ph, iter)
	}
}

// RunPhase runs one phase (which need not be part of the pipeline's
// per-step list — post-iteration phases are run this way) surrounded by
// the registered hooks.
func (p *Pipeline) RunPhase(ph Phase, iter int) {
	for _, h := range p.hooks {
		h.Before(ph, iter)
	}
	ph.Run(iter)
	for _, h := range p.hooks {
		h.After(ph, iter)
	}
}
