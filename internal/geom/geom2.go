// The two-dimensional geometry: internal/mesh + internal/sfc + the 2-D
// field and pusher substrates, adapted to the Geometry seam. Every formula
// here is the one the pre-seam pipeline used inline, expression for
// expression, so 2-D runs stay bit-identical.

package geom

import (
	"picpar/internal/comm"
	"picpar/internal/field"
	"picpar/internal/mesh"
	"picpar/internal/par"
	"picpar/internal/particle"
	"picpar/internal/pusher"
	"picpar/internal/sfc"
)

// G2 is the 2-D Geometry over a mesh.Dist and an sfc.Indexer.
type G2 struct {
	G  mesh.Grid
	D  *mesh.Dist
	Ix sfc.Indexer
}

// New2 builds the 2-D geometry.
func New2(g mesh.Grid, d *mesh.Dist, ix sfc.Indexer) *G2 {
	return &G2{G: g, D: d, Ix: ix}
}

// Dims implements Geometry.
func (ge *G2) Dims() int { return 2 }

// NumPoints implements Geometry.
func (ge *G2) NumPoints() int { return ge.G.NumPoints() }

// NumCells implements Geometry: the SFC indexer is a bijection onto
// [0, Nx·Ny), so the key space has one slot per cell.
func (ge *G2) NumCells() int { return ge.G.Nx * ge.G.Ny }

// NumVertices implements Geometry.
func (ge *G2) NumVertices() int { return 4 }

// Ranks implements Geometry.
func (ge *G2) Ranks() int { return ge.D.P }

// AssignKeys implements Geometry.
func (ge *G2) AssignKeys(s *particle.Store) {
	for i := 0; i < s.Len(); i++ {
		cx, cy := ge.G.CellOf(s.X[i], s.Y[i])
		s.Key[i] = float64(ge.Ix.Index(cx, cy))
	}
}

// CellKey implements Geometry: the same formula as AssignKeys, for one
// particle, without touching s.Key.
func (ge *G2) CellKey(s *particle.Store, i int) uint64 {
	cx, cy := ge.G.CellOf(s.X[i], s.Y[i])
	return uint64(ge.Ix.Index(cx, cy))
}

// CellOwner implements Geometry: ownership of the cell's lower-corner grid
// point, matching OwnerOfParticle for any particle inside the cell.
func (ge *G2) CellOwner(key uint64) int {
	cx, cy := ge.Ix.Coords(int(key))
	return ge.D.OwnerOfPoint(cx, cy)
}

// Footprint implements Geometry: bilinear CIC over the four cell vertices,
// with the high-edge wrap the scatter loop has always used.
func (ge *G2) Footprint(s *particle.Store, i int, fp *Footprint) {
	g := ge.G
	w := pusher.Weights(g, s.X[i], s.Y[i])
	fp.N = 4
	for k, off := range pusher.VertexOffsets {
		gi := w.CX + off[0]
		gj := w.CY + off[1]
		if gi >= g.Nx {
			gi = 0
		}
		if gj >= g.Ny {
			gj = 0
		}
		fp.Gid[k] = int32(gj*g.Nx + gi)
		fp.W[k] = w.W[k]
	}
}

// OwnerOfParticle implements Geometry.
func (ge *G2) OwnerOfParticle(s *particle.Store, i int) int {
	cx, cy := ge.G.CellOf(s.X[i], s.Y[i])
	return ge.D.OwnerOfPoint(cx, cy)
}

// OwnerOfPoint implements Geometry.
func (ge *G2) OwnerOfPoint(gid int) int {
	ci, cj := ge.G.PointCoords(gid)
	return ge.D.OwnerOfPoint(ci, cj)
}

// AdjacentRanks implements Geometry: identical or 8-neighbours on the
// periodic processor grid.
func (ge *G2) AdjacentRanks(a, b int) bool {
	if a == b {
		return true
	}
	ax, ay := ge.D.RankCoords(a)
	bx, by := ge.D.RankCoords(b)
	return wrapDist(ax-bx, ge.D.Px) <= 1 && wrapDist(ay-by, ge.D.Py) <= 1
}

// Move implements Geometry.
func (ge *G2) Move(s *particle.Store, i int, dt float64) {
	pusher.Move(s, i, ge.G, dt)
}

// Generate implements Geometry.
func (ge *G2) Generate(cfg GenConfig) (*particle.Store, error) {
	return particle.Generate(particle.Config{
		N:            cfg.N,
		Lx:           ge.G.Lx,
		Ly:           ge.G.Ly,
		Distribution: cfg.Distribution,
		Seed:         cfg.Seed,
		Thermal:      cfg.Thermal,
		Drift:        cfg.Drift,
		Charge:       cfg.Charge,
		Mass:         1,
	})
}

// NewStore implements Geometry.
func (ge *G2) NewStore(n int, charge, mass float64) *particle.Store {
	return particle.NewStore(n, charge, mass)
}

// NewFields implements Geometry.
func (ge *G2) NewFields(r int, pool *par.Pool) Fields {
	l := field.NewLocal(ge.D, r)
	l.SetPool(pool)
	f := &fields2{l: l, d: ge.D, nx: ge.G.Nx}
	f.arr = Arrays{
		Ex: l.Ex, Ey: l.Ey, Ez: l.Ez,
		Bx: l.Bx, By: l.By, Bz: l.Bz,
		Jx: l.Jx, Jy: l.Jy, Jz: l.Jz,
		Rho: l.Rho,
	}
	return f
}

// fields2 adapts field.Local to the Fields interface, closing over the
// distribution so Solve keeps its historical signature.
type fields2 struct {
	l   *field.Local
	d   *mesh.Dist
	nx  int // global grid width, for gid decoding
	arr Arrays
}

func (f *fields2) ZeroSources() { f.l.ZeroSources() }

func (f *fields2) Slot(gid int) int {
	ci := gid % f.nx
	cj := gid / f.nx
	l := f.l
	if !l.Contains(ci, cj) {
		return -1
	}
	return l.Idx(ci-l.I0, cj-l.J0)
}

func (f *fields2) Arrays() *Arrays { return &f.arr }

func (f *fields2) Solve(r comm.Transport, dt float64) { f.l.Solve(r, f.d, dt) }

func (f *fields2) Energy() float64 { return f.l.Energy() }

func (f *fields2) SumRho() float64 {
	l := f.l
	rho := 0.0
	for j := 0; j < l.Ny; j++ {
		for i := 0; i < l.Nx; i++ {
			rho += l.Rho[l.Idx(i, j)]
		}
	}
	return rho
}

func wrapDist(d, n int) int {
	if d < 0 {
		d = -d
	}
	if n-d < d {
		d = n - d
	}
	return d
}
