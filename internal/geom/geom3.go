// The three-dimensional geometry: internal/mesh3 + the 3-D SFC indexers +
// the Local3 field substrate and trilinear pusher kernels, adapted to the
// Geometry seam. This is what turns the dimension-generic pipeline into a
// full 3-D PIC simulation.

package geom

import (
	"picpar/internal/comm"
	"picpar/internal/field"
	"picpar/internal/mesh3"
	"picpar/internal/par"
	"picpar/internal/particle"
	"picpar/internal/pusher"
	"picpar/internal/sfc"
)

// G3 is the 3-D Geometry over a mesh3.Dist and an sfc.Indexer3.
type G3 struct {
	G  mesh3.Grid
	D  *mesh3.Dist
	Ix sfc.Indexer3
}

// New3 builds the 3-D geometry.
func New3(g mesh3.Grid, d *mesh3.Dist, ix sfc.Indexer3) *G3 {
	return &G3{G: g, D: d, Ix: ix}
}

// Dims implements Geometry.
func (ge *G3) Dims() int { return 3 }

// NumPoints implements Geometry.
func (ge *G3) NumPoints() int { return ge.G.NumPoints() }

// NumCells implements Geometry: the 3-D SFC indexer is a bijection onto
// [0, Nx·Ny·Nz), so the key space has one slot per cell.
func (ge *G3) NumCells() int { return ge.G.Nx * ge.G.Ny * ge.G.Nz }

// NumVertices implements Geometry.
func (ge *G3) NumVertices() int { return 8 }

// Ranks implements Geometry.
func (ge *G3) Ranks() int { return ge.D.P }

// AssignKeys implements Geometry.
func (ge *G3) AssignKeys(s *particle.Store) {
	for i := 0; i < s.Len(); i++ {
		cx, cy, cz := ge.G.CellOf(s.X[i], s.Y[i], s.Z[i])
		s.Key[i] = float64(ge.Ix.Index(cx, cy, cz))
	}
}

// CellKey implements Geometry: the same formula as AssignKeys, for one
// particle, without touching s.Key.
func (ge *G3) CellKey(s *particle.Store, i int) uint64 {
	cx, cy, cz := ge.G.CellOf(s.X[i], s.Y[i], s.Z[i])
	return uint64(ge.Ix.Index(cx, cy, cz))
}

// CellOwner implements Geometry: ownership of the cell's lower-corner grid
// point, matching OwnerOfParticle for any particle inside the cell.
func (ge *G3) CellOwner(key uint64) int {
	cx, cy, cz := ge.Ix.Coords(int(key))
	return ge.D.OwnerOfPoint(cx, cy, cz)
}

// Footprint implements Geometry: trilinear CIC over the eight cell
// vertices, wrapping the high edges like the 2-D footprint does.
func (ge *G3) Footprint(s *particle.Store, i int, fp *Footprint) {
	g := ge.G
	w := pusher.Weights3(g, s.X[i], s.Y[i], s.Z[i])
	fp.N = 8
	for k, off := range pusher.VertexOffsets3 {
		gi := w.CX + off[0]
		gj := w.CY + off[1]
		gk := w.CZ + off[2]
		if gi >= g.Nx {
			gi = 0
		}
		if gj >= g.Ny {
			gj = 0
		}
		if gk >= g.Nz {
			gk = 0
		}
		fp.Gid[k] = int32((gk*g.Ny+gj)*g.Nx + gi)
		fp.W[k] = w.W[k]
	}
}

// OwnerOfParticle implements Geometry.
func (ge *G3) OwnerOfParticle(s *particle.Store, i int) int {
	cx, cy, cz := ge.G.CellOf(s.X[i], s.Y[i], s.Z[i])
	return ge.D.OwnerOfPoint(cx, cy, cz)
}

// OwnerOfPoint implements Geometry.
func (ge *G3) OwnerOfPoint(gid int) int {
	ci, cj, ck := ge.G.PointCoords(gid)
	return ge.D.OwnerOfPoint(ci, cj, ck)
}

// AdjacentRanks implements Geometry: identical or 26-neighbours on the
// periodic processor grid.
func (ge *G3) AdjacentRanks(a, b int) bool {
	if a == b {
		return true
	}
	ax, ay, az := ge.D.RankCoords(a)
	bx, by, bz := ge.D.RankCoords(b)
	return wrapDist(ax-bx, ge.D.Px) <= 1 &&
		wrapDist(ay-by, ge.D.Py) <= 1 &&
		wrapDist(az-bz, ge.D.Pz) <= 1
}

// Move implements Geometry.
func (ge *G3) Move(s *particle.Store, i int, dt float64) {
	pusher.Move3(s, i, ge.G, dt)
}

// Generate implements Geometry.
func (ge *G3) Generate(cfg GenConfig) (*particle.Store, error) {
	return particle.Generate3(particle.Config3{
		N:            cfg.N,
		Lx:           ge.G.Lx,
		Ly:           ge.G.Ly,
		Lz:           ge.G.Lz,
		Distribution: cfg.Distribution,
		Seed:         cfg.Seed,
		Thermal:      cfg.Thermal,
		Drift:        cfg.Drift,
		Charge:       cfg.Charge,
		Mass:         1,
	})
}

// NewStore implements Geometry.
func (ge *G3) NewStore(n int, charge, mass float64) *particle.Store {
	return particle.NewStore3(n, charge, mass)
}

// NewFields implements Geometry.
func (ge *G3) NewFields(r int, pool *par.Pool) Fields {
	l := field.NewLocal3(ge.D, r)
	l.SetPool(pool)
	f := &fields3{l: l, d: ge.D, nx: ge.G.Nx, ny: ge.G.Ny}
	f.arr = Arrays{
		Ex: l.Ex, Ey: l.Ey, Ez: l.Ez,
		Bx: l.Bx, By: l.By, Bz: l.Bz,
		Jx: l.Jx, Jy: l.Jy, Jz: l.Jz,
		Rho: l.Rho,
	}
	return f
}

// fields3 adapts field.Local3 to the Fields interface.
type fields3 struct {
	l      *field.Local3
	d      *mesh3.Dist
	nx, ny int // global grid extents, for gid decoding
	arr    Arrays
}

func (f *fields3) ZeroSources() { f.l.ZeroSources() }

func (f *fields3) Slot(gid int) int {
	ci := gid % f.nx
	cj := (gid / f.nx) % f.ny
	ck := gid / (f.nx * f.ny)
	l := f.l
	if !l.Contains(ci, cj, ck) {
		return -1
	}
	return l.Idx(ci-l.I0, cj-l.J0, ck-l.K0)
}

func (f *fields3) Arrays() *Arrays { return &f.arr }

func (f *fields3) Solve(r comm.Transport, dt float64) { f.l.Solve(r, f.d, dt) }

func (f *fields3) Energy() float64 { return f.l.Energy() }

func (f *fields3) SumRho() float64 {
	l := f.l
	rho := 0.0
	for k := 0; k < l.Nz; k++ {
		for j := 0; j < l.Ny; j++ {
			for i := 0; i < l.Nx; i++ {
				rho += l.Rho[l.Idx(i, j, k)]
			}
		}
	}
	return rho
}
