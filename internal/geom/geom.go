// Package geom is the dimension seam of the simulation core: everything
// the PIC pipeline needs to know about space — cell enumeration and SFC
// keying, the interpolation footprint of a particle, grid-point ownership
// and the neighbour stencil, particle generation/movement, and the field
// substrate — behind one Geometry interface that internal/mesh (2-D) and
// internal/mesh3 (3-D) both satisfy.
//
// The engine pipeline, the transport decorator stack, the policy triggers
// and the incremental redistribution machinery never mention a dimension;
// they compose over a Geometry, so a 3-D run goes through the exact same
// phases, tags and tables as a 2-D run. Adding another geometry (a new
// dimensionality, an adaptive mesh, a different SFC family) means
// implementing this interface — not rewriting the pipeline.
package geom

import (
	"picpar/internal/comm"
	"picpar/internal/par"
	"picpar/internal/particle"
)

// MaxVertices is the largest interpolation footprint any geometry produces
// (8 = trilinear CIC in 3-D); Footprint arrays are sized to it so the hot
// loops stay allocation-free.
const MaxVertices = 8

// KeyAssignWorkPerParticle is the modelled δ units to index one particle
// (cell computation plus one table lookup), identical across dimensions.
const KeyAssignWorkPerParticle = 4

// Footprint is the interpolation footprint of one particle: the global ids
// of the N vertex grid points of its cell and their CIC weights. It is
// filled in place by Geometry.Footprint so per-particle loops allocate
// nothing.
type Footprint struct {
	N   int
	Gid [MaxVertices]int32
	W   [MaxVertices]float64
}

// Arrays exposes the field component storage of a Fields implementation in
// halo layout. The scatter and gather hot loops index these slices directly
// (via Fields.Slot) instead of going through per-point interface calls.
type Arrays struct {
	Ex, Ey, Ez []float64
	Bx, By, Bz []float64
	Jx, Jy, Jz []float64
	Rho        []float64
}

// Fields is one rank's field substrate as the pipeline sees it: source
// deposition targets, the Maxwell solve (including its halo exchanges), and
// the owned-region reductions used by diagnostics and invariant checks.
type Fields interface {
	// ZeroSources clears J and Rho before a scatter phase.
	ZeroSources()
	// Slot maps a global grid-point id to its offset in the Arrays slices,
	// or −1 when the point is not owned by this rank.
	Slot(gid int) int
	// Arrays returns the component storage (stable for the Fields' lifetime).
	Arrays() *Arrays
	// Solve advances Maxwell's equations one leapfrog step, exchanging halos
	// with the neighbour ranks and charging compute costs to r.
	Solve(r comm.Transport, dt float64)
	// Energy returns this rank's field energy over owned points.
	Energy() float64
	// SumRho returns the deposited charge over owned points.
	SumRho() float64
}

// GenConfig parameterises the initial particle population of a run,
// dimension-independently; the geometry supplies the domain extents.
type GenConfig struct {
	N            int
	Distribution string
	Seed         int64
	Thermal      float64
	Drift        float64
	Charge       float64
}

// Geometry is the seam between the simulation pipeline and space. One
// Geometry value is built per run (before ranks launch) and shared
// read-only by all ranks; NewFields is the only per-rank factory.
type Geometry interface {
	// Dims returns the spatial dimensionality (2 or 3).
	Dims() int
	// NumPoints returns the number of global grid points.
	NumPoints() int
	// NumCells returns the number of global cells — the size of the SFC key
	// space (every key AssignKeys/CellKey produces lies in [0, NumCells)).
	NumCells() int
	// NumVertices returns the interpolation footprint size (4 or 8).
	NumVertices() int
	// Ranks returns the number of ranks the mesh is distributed over.
	Ranks() int

	// AssignKeys sets every particle's sort key to the SFC index of its
	// cell (the paper's "particle indexing"). Callers charge
	// KeyAssignWorkPerParticle per particle.
	AssignKeys(s *particle.Store)
	// CellKey returns particle i's SFC cell key without mutating the store
	// — the single-particle form of AssignKeys, used by the cost ledger.
	CellKey(s *particle.Store, i int) uint64
	// CellOwner returns the rank owning the cell with the given SFC key
	// (its lower-corner grid point) — the Eulerian home of that cell.
	CellOwner(key uint64) int
	// Footprint fills fp with particle i's vertex grid points and weights.
	Footprint(s *particle.Store, i int, fp *Footprint)
	// OwnerOfParticle returns the rank owning particle i's cell (its lower
	// corner grid point) — the Eulerian migration target.
	OwnerOfParticle(s *particle.Store, i int) int
	// OwnerOfPoint returns the rank owning a global grid point id.
	OwnerOfPoint(gid int) int
	// AdjacentRanks reports whether two ranks are identical or neighbours
	// (including diagonals) on the periodic processor grid — the paper's
	// "local" communication classification.
	AdjacentRanks(a, b int) bool
	// Move advances particle i's position by dt with periodic wrapping.
	Move(s *particle.Store, i int, dt float64)

	// Generate creates the global initial population for this geometry's
	// domain (a store of the matching dimensionality).
	Generate(cfg GenConfig) (*particle.Store, error)
	// NewStore returns an empty store of this geometry's dimensionality.
	NewStore(n int, charge, mass float64) *particle.Store
	// NewFields allocates rank r's field substrate. pool, when non-nil,
	// parallelises the Maxwell update sweeps over the rank's shared-memory
	// workers (bit-identical results for any pool size); nil keeps the
	// sequential sweeps.
	NewFields(r int, pool *par.Pool) Fields
}

// NeighborRanks lists the ranks adjacent to rank r (self excluded, sorted
// ascending) under ge's periodic processor grid — the peer set of the
// neighbor-sparse communication topology, exposed so the comm layer can
// assemble only the sockets the halo/CIC stencil can ever use.
func NeighborRanks(ge Geometry, r int) []int {
	var peers []int
	for q := 0; q < ge.Ranks(); q++ {
		if q != r && ge.AdjacentRanks(r, q) {
			peers = append(peers, q)
		}
	}
	return peers
}
