package field

import (
	"testing"

	"picpar/internal/comm"
	"picpar/internal/commtest"
	"picpar/internal/machine"
	"picpar/internal/mesh"
)

// TestExchangeHalo1DDist exercises the degenerate processor grids (Px = 1)
// produced by the 1-D BLOCK distribution: the x-direction halo neighbours
// are the rank itself, which must work through local delivery without
// touching the network.
func TestExchangeHalo1DDist(t *testing.T) {
	g := mesh.NewGrid(8, 12)
	d, err := mesh.NewDist1D(g, 3)
	if err != nil {
		t.Fatal(err)
	}
	val := func(gi, gj int) float64 {
		gi = (gi + g.Nx) % g.Nx
		gj = (gj + g.Ny) % g.Ny
		return float64(gj*100 + gi)
	}
	runWorld(3, func(r comm.Transport) {
		l := NewLocal(d, r.Rank())
		for j := 0; j < l.Ny; j++ {
			for i := 0; i < l.Nx; i++ {
				l.Bx[l.Idx(i, j)] = val(l.I0+i, l.J0+j)
			}
		}
		l.ExchangeHalo(r, d, CompB)
		// X halo wraps onto the rank's own opposite edge.
		for j := 0; j < l.Ny; j++ {
			if got := l.Bx[l.Idx(-1, j)]; got != val(l.I0-1, l.J0+j) {
				t.Errorf("rank %d x-low halo row %d = %g", r.Rank(), j, got)
			}
			if got := l.Bx[l.Idx(l.Nx, j)]; got != val(l.I0+l.Nx, l.J0+j) {
				t.Errorf("rank %d x-high halo row %d = %g", r.Rank(), j, got)
			}
		}
		// Y halo comes from the neighbouring ranks.
		for i := 0; i < l.Nx; i++ {
			if got := l.Bx[l.Idx(i, -1)]; got != val(l.I0+i, l.J0-1) {
				t.Errorf("rank %d y-low halo col %d = %g", r.Rank(), i, got)
			}
			if got := l.Bx[l.Idx(i, l.Ny)]; got != val(l.I0+i, l.J0+l.Ny) {
				t.Errorf("rank %d y-high halo col %d = %g", r.Rank(), i, got)
			}
		}
	})
}

// TestSelfHaloNoNetworkTraffic confirms self-neighbour halo legs cost no
// messages.
func TestSelfHaloNoNetworkTraffic(t *testing.T) {
	g := mesh.NewGrid(8, 8)
	d, err := mesh.NewDist1D(g, 2) // Px = 1: x legs are self-sends
	if err != nil {
		t.Fatal(err)
	}
	ws := commtest.Launch(2, machine.Params{Tau: 1}, func(r comm.Transport) {
		l := NewLocal(d, r.Rank())
		l.ExchangeHalo(r, d, CompE)
	})
	for i := range ws.Ranks {
		// Only the two y-direction messages hit the network.
		if got := ws.Ranks[i].Total().MsgsSent; got != 2 {
			t.Errorf("rank %d sent %d messages, want 2", i, got)
		}
	}
}
