// Package field holds the electromagnetic mesh-grid arrays of the PIC
// problem on each rank's BLOCK submesh and advances Maxwell's equations on
// them with a finite-difference scheme in which every grid point needs data
// only from its four axis neighbours — the stencil assumed by the paper's
// field-solve cost analysis.
//
// Units are normalised: c = 1, ε₀ = μ₀ = 1, unit cells. The full 2d3v
// component set is carried: E = (Ex, Ey, Ez), B = (Bx, By, Bz), current
// density J = (Jx, Jy, Jz) and charge density Rho.
package field

import (
	"fmt"
	"math"

	"picpar/internal/comm"
	"picpar/internal/mesh"
	"picpar/internal/par"
)

// Local is the field storage of one rank: the owned submesh plus a one-point
// halo on all sides. Owned local coordinates run 0..Nx-1 × 0..Ny-1; halo
// coordinates extend to −1 and Nx (Ny).
type Local struct {
	I0, J0 int // global coordinates of owned point (0, 0)
	Nx, Ny int // owned extents

	Ex, Ey, Ez []float64
	Bx, By, Bz []float64
	Jx, Jy, Jz []float64
	Rho        []float64

	stride int

	// pool, when set, parallelises the curl sweeps over owned rows. Every
	// grid point's update reads only the other family of components (plus
	// J), so row ranges are write-disjoint and the result is bit-identical
	// for any worker count. task is stored so Run calls allocate nothing.
	pool *par.Pool
	task sweepTask
}

// SetPool installs the shared-memory worker pool the update sweeps run on;
// nil (or a 1-worker pool) keeps the sequential loops.
func (l *Local) SetPool(p *par.Pool) { l.pool = p }

// sweepTask is the par.Task of one curl sweep: rows [jLo, jHi) of one
// component-family update.
type sweepTask struct {
	l    *Local
	dt   float64
	comp Components // CompE: update E from B; CompB: update B from E
}

func (t *sweepTask) Work(_, jLo, jHi int) {
	if t.comp == CompE {
		t.l.updateERows(t.dt, jLo, jHi)
	} else {
		t.l.updateBRows(t.dt, jLo, jHi)
	}
}

// NewLocal allocates zeroed fields for the owned region of rank r under
// distribution d.
func NewLocal(d *mesh.Dist, r int) *Local {
	i0, i1, j0, j1 := d.Bounds(r)
	nx, ny := i1-i0, j1-j0
	l := &Local{I0: i0, J0: j0, Nx: nx, Ny: ny, stride: nx + 2}
	n := (nx + 2) * (ny + 2)
	l.Ex, l.Ey, l.Ez = make([]float64, n), make([]float64, n), make([]float64, n)
	l.Bx, l.By, l.Bz = make([]float64, n), make([]float64, n), make([]float64, n)
	l.Jx, l.Jy, l.Jz = make([]float64, n), make([]float64, n), make([]float64, n)
	l.Rho = make([]float64, n)
	return l
}

// Idx maps local owned coordinates (i ∈ [−1, Nx], j ∈ [−1, Ny]) to the halo
// array offset.
func (l *Local) Idx(i, j int) int { return (j+1)*l.stride + (i + 1) }

// Contains reports whether global grid point (gi, gj) is owned by this
// submesh.
func (l *Local) Contains(gi, gj int) bool {
	return gi >= l.I0 && gi < l.I0+l.Nx && gj >= l.J0 && gj < l.J0+l.Ny
}

// LocalOf converts owned global coordinates to local ones. It panics if the
// point is not owned; callers route off-processor accesses through ghost
// tables instead.
func (l *Local) LocalOf(gi, gj int) (int, int) {
	if !l.Contains(gi, gj) {
		panic(fmt.Sprintf("field: point (%d,%d) not owned by submesh at (%d,%d)+%dx%d",
			gi, gj, l.I0, l.J0, l.Nx, l.Ny))
	}
	return gi - l.I0, gj - l.J0
}

// ZeroSources clears J and Rho in preparation for a new scatter phase.
func (l *Local) ZeroSources() {
	for i := range l.Jx {
		l.Jx[i], l.Jy[i], l.Jz[i], l.Rho[i] = 0, 0, 0, 0
	}
}

// fieldSolveWorkPerPoint is the modelled compute units (T_f_comp) for one
// grid-point update of one curl step: 6 components × (2 differences + 2
// multiply-adds) ≈ 24 flops.
const fieldSolveWorkPerPoint = 24

// UpdateE advances E by dt using ∂E/∂t = ∇×B − J with central differences.
// The B halo must be current (call ExchangeHalo with the B components
// first). Compute cost is charged to r's current phase.
func (l *Local) UpdateE(r comm.Transport, dt float64) {
	if l.pool != nil && l.pool.Workers() > 1 {
		l.task = sweepTask{l: l, dt: dt, comp: CompE}
		l.pool.Run(l.Ny, &l.task)
	} else {
		l.updateERows(dt, 0, l.Ny)
	}
	// The modelled charge is the total point count — invariant under the
	// worker count, so simulated times never depend on host parallelism.
	r.Compute(l.Nx * l.Ny * fieldSolveWorkPerPoint)
}

func (l *Local) updateERows(dt float64, jLo, jHi int) {
	s := l.stride
	for j := jLo; j < jHi; j++ {
		for i := 0; i < l.Nx; i++ {
			c := l.Idx(i, j)
			// Central differences with unit cells: ∂/∂x f = (f[i+1]−f[i−1])/2.
			dBzDy := (l.Bz[c+s] - l.Bz[c-s]) / 2
			dBzDx := (l.Bz[c+1] - l.Bz[c-1]) / 2
			dByDx := (l.By[c+1] - l.By[c-1]) / 2
			dBxDy := (l.Bx[c+s] - l.Bx[c-s]) / 2
			l.Ex[c] += dt * (dBzDy - l.Jx[c])
			l.Ey[c] += dt * (-dBzDx - l.Jy[c])
			l.Ez[c] += dt * (dByDx - dBxDy - l.Jz[c])
		}
	}
}

// UpdateB advances B by dt using ∂B/∂t = −∇×E. The E halo must be current.
func (l *Local) UpdateB(r comm.Transport, dt float64) {
	if l.pool != nil && l.pool.Workers() > 1 {
		l.task = sweepTask{l: l, dt: dt, comp: CompB}
		l.pool.Run(l.Ny, &l.task)
	} else {
		l.updateBRows(dt, 0, l.Ny)
	}
	r.Compute(l.Nx * l.Ny * fieldSolveWorkPerPoint)
}

func (l *Local) updateBRows(dt float64, jLo, jHi int) {
	s := l.stride
	for j := jLo; j < jHi; j++ {
		for i := 0; i < l.Nx; i++ {
			c := l.Idx(i, j)
			dEzDy := (l.Ez[c+s] - l.Ez[c-s]) / 2
			dEzDx := (l.Ez[c+1] - l.Ez[c-1]) / 2
			dEyDx := (l.Ey[c+1] - l.Ey[c-1]) / 2
			dExDy := (l.Ex[c+s] - l.Ex[c-s]) / 2
			l.Bx[c] += dt * (-dEzDy)
			l.By[c] += dt * (dEzDx)
			l.Bz[c] += dt * (-(dEyDx - dExDy))
		}
	}
}

// Components selects which vector fields ExchangeHalo moves.
type Components int

// Component sets for halo exchange.
const (
	CompE Components = iota // Ex, Ey, Ez
	CompB                   // Bx, By, Bz
)

func (l *Local) comps(c Components) [3][]float64 {
	if c == CompE {
		return [3][]float64{l.Ex, l.Ey, l.Ez}
	}
	return [3][]float64{l.Bx, l.By, l.Bz}
}

// Exchange tags (application tag space).
const (
	tagHaloXLow comm.Tag = comm.TagUser + 10 + iota
	tagHaloXHigh
	tagHaloYLow
	tagHaloYHigh
)

// ExchangeHalo fills the one-point halo of the selected components from the
// four neighbouring ranks with periodic global boundaries. All three
// components travelling in the same direction are coalesced into a single
// message, so each rank sends exactly four messages of 3·extent values —
// the 4·(τ + √(m/p)·l_grid·μ) term of the paper's field-solve analysis.
//
// Works for any processor grid, including degenerate 1×p and p×1 grids
// (neighbour == self is handled without network traffic).
func (l *Local) ExchangeHalo(r comm.Transport, d *mesh.Dist, which Components) {
	f := l.comps(which)
	left, right, down, up := d.Neighbours(r.Rank())

	// X direction: send owned column 0 to the left neighbour (it becomes
	// their i=Nx halo column), and column Nx−1 to the right neighbour.
	sendCol := func(i int) []float64 {
		buf := make([]float64, 0, 3*l.Ny)
		for k := 0; k < 3; k++ {
			for j := 0; j < l.Ny; j++ {
				buf = append(buf, f[k][l.Idx(i, j)])
			}
		}
		return buf
	}
	fillCol := func(i int, buf []float64) {
		for k := 0; k < 3; k++ {
			for j := 0; j < l.Ny; j++ {
				f[k][l.Idx(i, j)] = buf[k*l.Ny+j]
			}
		}
	}
	comm.SendFloat64s(r, left, tagHaloXLow, sendCol(0))
	comm.SendFloat64s(r, right, tagHaloXHigh, sendCol(l.Nx-1))
	fillCol(l.Nx, comm.RecvFloat64s(r, right, tagHaloXLow))
	fillCol(-1, comm.RecvFloat64s(r, left, tagHaloXHigh))

	// Y direction: rows, including the x halo just filled is unnecessary
	// for the 4-point stencil, so plain owned rows suffice.
	sendRow := func(j int) []float64 {
		buf := make([]float64, 0, 3*l.Nx)
		for k := 0; k < 3; k++ {
			for i := 0; i < l.Nx; i++ {
				buf = append(buf, f[k][l.Idx(i, j)])
			}
		}
		return buf
	}
	fillRow := func(j int, buf []float64) {
		for k := 0; k < 3; k++ {
			for i := 0; i < l.Nx; i++ {
				f[k][l.Idx(i, j)] = buf[k*l.Nx+i]
			}
		}
	}
	comm.SendFloat64s(r, down, tagHaloYLow, sendRow(0))
	comm.SendFloat64s(r, up, tagHaloYHigh, sendRow(l.Ny-1))
	fillRow(l.Ny, comm.RecvFloat64s(r, up, tagHaloYLow))
	fillRow(-1, comm.RecvFloat64s(r, down, tagHaloYHigh))
}

// Solve performs one full leapfrog field-solve step: refresh B halo, update
// E, refresh E halo, update B.
func (l *Local) Solve(r comm.Transport, d *mesh.Dist, dt float64) {
	l.ExchangeHalo(r, d, CompB)
	l.UpdateE(r, dt)
	l.ExchangeHalo(r, d, CompE)
	l.UpdateB(r, dt)
}

// Energy returns this rank's field energy ½Σ(E² + B²) over owned points.
func (l *Local) Energy() float64 {
	e := 0.0
	for j := 0; j < l.Ny; j++ {
		for i := 0; i < l.Nx; i++ {
			c := l.Idx(i, j)
			e += l.Ex[c]*l.Ex[c] + l.Ey[c]*l.Ey[c] + l.Ez[c]*l.Ez[c] +
				l.Bx[c]*l.Bx[c] + l.By[c]*l.By[c] + l.Bz[c]*l.Bz[c]
		}
	}
	return e / 2
}

// TotalEnergy returns the global field energy on every rank.
func (l *Local) TotalEnergy(r comm.Transport) float64 {
	return comm.AllreduceFloat64(r, l.Energy(), func(a, b float64) float64 { return a + b })
}

// MaxAbs returns the largest |value| across the six field components of the
// owned region — a cheap stability diagnostic (blow-up detector).
func (l *Local) MaxAbs() float64 {
	m := 0.0
	for j := 0; j < l.Ny; j++ {
		for i := 0; i < l.Nx; i++ {
			c := l.Idx(i, j)
			for _, v := range [6]float64{l.Ex[c], l.Ey[c], l.Ez[c], l.Bx[c], l.By[c], l.Bz[c]} {
				if a := math.Abs(v); a > m {
					m = a
				}
			}
		}
	}
	return m
}
