package field

import (
	"math"
	"testing"

	"picpar/internal/comm"
	"picpar/internal/commtest"
	"picpar/internal/machine"
	"picpar/internal/mesh"
)

func dist(t *testing.T, nx, ny, p int) *mesh.Dist {
	t.Helper()
	d, err := mesh.NewDist(mesh.NewGrid(nx, ny), p)
	if err != nil {
		t.Fatal(err)
	}
	return d
}

func TestNewLocalGeometry(t *testing.T) {
	d := dist(t, 16, 8, 4) // expect 4x1 or 2x2 grid; blocks owned exactly
	total := 0
	for r := 0; r < 4; r++ {
		l := NewLocal(d, r)
		total += l.Nx * l.Ny
		i0, i1, j0, j1 := d.Bounds(r)
		if l.I0 != i0 || l.J0 != j0 || l.Nx != i1-i0 || l.Ny != j1-j0 {
			t.Errorf("rank %d geometry mismatch", r)
		}
	}
	if total != 16*8 {
		t.Errorf("local sizes sum to %d, want %d", total, 16*8)
	}
}

func TestIdxHaloLayout(t *testing.T) {
	d := dist(t, 8, 8, 1)
	l := NewLocal(d, 0)
	// Distinct offsets for all owned + halo points.
	seen := map[int]bool{}
	for j := -1; j <= l.Ny; j++ {
		for i := -1; i <= l.Nx; i++ {
			c := l.Idx(i, j)
			if c < 0 || c >= len(l.Ez) {
				t.Fatalf("Idx(%d,%d) = %d out of array", i, j, c)
			}
			if seen[c] {
				t.Fatalf("Idx collision at (%d,%d)", i, j)
			}
			seen[c] = true
		}
	}
}

func TestContainsLocalOf(t *testing.T) {
	d := dist(t, 16, 16, 4)
	l := NewLocal(d, 3)
	if !l.Contains(l.I0, l.J0) || l.Contains(l.I0-1, l.J0) {
		t.Error("Contains boundary wrong")
	}
	i, j := l.LocalOf(l.I0+2, l.J0+1)
	if i != 2 || j != 1 {
		t.Errorf("LocalOf = (%d,%d)", i, j)
	}
	defer func() {
		if recover() == nil {
			t.Error("LocalOf outside must panic")
		}
	}()
	l.LocalOf(l.I0-1, l.J0)
}

func TestZeroSources(t *testing.T) {
	d := dist(t, 4, 4, 1)
	l := NewLocal(d, 0)
	l.Jx[5], l.Rho[7] = 3, 4
	l.ZeroSources()
	if l.Jx[5] != 0 || l.Rho[7] != 0 {
		t.Error("sources not cleared")
	}
}

// runWorld executes fn on p ranks with a zero-cost machine.
func runWorld(p int, fn func(r comm.Transport)) machine.WorldStats {
	return commtest.Launch(p, machine.Zero(), fn)
}

func TestExchangeHaloMatchesGlobalField(t *testing.T) {
	// Fill every rank's owned region from a known global function, exchange
	// halos, and verify each halo point equals the global value at the
	// periodic neighbour coordinate.
	for _, p := range []int{1, 2, 4, 8} {
		d := dist(t, 16, 12, p)
		g := d.G
		val := func(gi, gj int) float64 {
			gi = (gi + g.Nx) % g.Nx
			gj = (gj + g.Ny) % g.Ny
			return float64(gj*g.Nx+gi) + 0.25
		}
		runWorld(p, func(r comm.Transport) {
			l := NewLocal(d, r.Rank())
			for j := 0; j < l.Ny; j++ {
				for i := 0; i < l.Nx; i++ {
					v := val(l.I0+i, l.J0+j)
					c := l.Idx(i, j)
					l.Ex[c], l.Ey[c], l.Ez[c] = v, 2*v, 3*v
				}
			}
			l.ExchangeHalo(r, d, CompE)
			check := func(i, j int) {
				c := l.Idx(i, j)
				want := val(l.I0+i, l.J0+j)
				if l.Ex[c] != want || l.Ey[c] != 2*want || l.Ez[c] != 3*want {
					t.Errorf("p=%d rank=%d halo (%d,%d): got %g want %g", p, r.Rank(), i, j, l.Ex[c], want)
				}
			}
			for i := 0; i < l.Nx; i++ {
				check(i, -1)
				check(i, l.Ny)
			}
			for j := 0; j < l.Ny; j++ {
				check(-1, j)
				check(l.Nx, j)
			}
		})
	}
}

func TestExchangeHaloMessageCount(t *testing.T) {
	// Each rank sends exactly 4 coalesced messages per exchange on a
	// processor grid with distinct neighbours.
	d := dist(t, 16, 16, 16) // 4x4
	ws := commtest.Launch(16, machine.Params{Tau: 1}, func(r comm.Transport) {
		l := NewLocal(d, r.Rank())
		l.ExchangeHalo(r, d, CompB)
	})
	for i := range ws.Ranks {
		if got := ws.Ranks[i].Total().MsgsSent; got != 4 {
			t.Errorf("rank %d sent %d messages, want 4", i, got)
		}
	}
}

func TestSolvePreservesZeroField(t *testing.T) {
	d := dist(t, 8, 8, 4)
	runWorld(4, func(r comm.Transport) {
		l := NewLocal(d, r.Rank())
		l.Solve(r, d, 0.25)
		if l.Energy() != 0 {
			t.Errorf("rank %d: zero field gained energy %g", r.Rank(), l.Energy())
		}
	})
}

func TestSolveUniformJProducesUniformE(t *testing.T) {
	// With uniform J and no initial fields, E should grow uniformly:
	// dE/dt = −J, no curl develops, B stays zero.
	const p = 4
	d := dist(t, 8, 8, p)
	runWorld(p, func(r comm.Transport) {
		l := NewLocal(d, r.Rank())
		for j := 0; j < l.Ny; j++ {
			for i := 0; i < l.Nx; i++ {
				l.Jz[l.Idx(i, j)] = 2.0
			}
		}
		dt := 0.25
		l.Solve(r, d, dt)
		for j := 0; j < l.Ny; j++ {
			for i := 0; i < l.Nx; i++ {
				c := l.Idx(i, j)
				if math.Abs(l.Ez[c]-(-2.0*dt)) > 1e-14 {
					t.Fatalf("Ez[%d,%d] = %g, want %g", i, j, l.Ez[c], -2.0*dt)
				}
				if l.Bx[c] != 0 || l.By[c] != 0 || l.Bz[c] != 0 {
					t.Fatalf("B grew from uniform E: (%g,%g,%g)", l.Bx[c], l.By[c], l.Bz[c])
				}
			}
		}
	})
}

func TestSolveParallelMatchesSerial(t *testing.T) {
	// The distributed solve must be bitwise independent of the processor
	// count: compare a 4-rank run against a 1-rank run point by point.
	nx, ny := 16, 8
	serial := solveToGlobal(t, nx, ny, 1, 3)
	for _, p := range []int{2, 4, 8} {
		par := solveToGlobal(t, nx, ny, p, 3)
		for k := range serial {
			if math.Abs(serial[k]-par[k]) > 1e-13 {
				t.Fatalf("p=%d: field diverges at %d: serial %g parallel %g", p, k, serial[k], par[k])
			}
		}
	}
}

// solveToGlobal seeds deterministic J and initial E, runs `steps` solves on
// p ranks and gathers global Ez into a flat array.
func solveToGlobal(t *testing.T, nx, ny, p, steps int) []float64 {
	t.Helper()
	d := dist(t, nx, ny, p)
	out := make([]float64, nx*ny)
	runWorld(p, func(r comm.Transport) {
		l := NewLocal(d, r.Rank())
		for j := 0; j < l.Ny; j++ {
			for i := 0; i < l.Nx; i++ {
				gi, gj := l.I0+i, l.J0+j
				c := l.Idx(i, j)
				l.Jz[c] = math.Sin(float64(gi)) * math.Cos(float64(gj))
				l.Ez[c] = math.Cos(float64(gi + gj))
				l.Ex[c] = float64(gi%3) * 0.1
			}
		}
		for s := 0; s < steps; s++ {
			l.Solve(r, d, 0.2)
		}
		for j := 0; j < l.Ny; j++ {
			for i := 0; i < l.Nx; i++ {
				out[(l.J0+j)*nx+(l.I0+i)] = l.Ez[l.Idx(i, j)]
			}
		}
	})
	return out
}

func TestEnergyAndTotalEnergy(t *testing.T) {
	const p = 4
	d := dist(t, 8, 8, p)
	runWorld(p, func(r comm.Transport) {
		l := NewLocal(d, r.Rank())
		for j := 0; j < l.Ny; j++ {
			for i := 0; i < l.Nx; i++ {
				l.Ex[l.Idx(i, j)] = 2 // energy ½·4 per point
			}
		}
		local := l.Energy()
		wantLocal := float64(l.Nx*l.Ny) * 2
		if math.Abs(local-wantLocal) > 1e-12 {
			t.Errorf("local energy %g, want %g", local, wantLocal)
		}
		tot := l.TotalEnergy(r)
		if math.Abs(tot-float64(8*8)*2) > 1e-12 {
			t.Errorf("total energy %g, want %g", tot, 128.0)
		}
	})
}

func TestMaxAbs(t *testing.T) {
	d := dist(t, 4, 4, 1)
	l := NewLocal(d, 0)
	l.By[l.Idx(2, 3)] = -7
	l.Ez[l.Idx(0, 0)] = 3
	if got := l.MaxAbs(); got != 7 {
		t.Errorf("MaxAbs = %g, want 7", got)
	}
}

func TestVacuumWaveEnergyStable(t *testing.T) {
	// A smooth standing wave in vacuum should neither blow up nor decay
	// catastrophically over many steps at a CFL-safe dt.
	const p = 4
	d := dist(t, 32, 32, p)
	energies := make([]float64, p)
	runWorld(p, func(r comm.Transport) {
		l := NewLocal(d, r.Rank())
		for j := 0; j < l.Ny; j++ {
			for i := 0; i < l.Nx; i++ {
				gi := l.I0 + i
				l.Ez[l.Idx(i, j)] = math.Sin(2 * math.Pi * float64(gi) / 32)
			}
		}
		e0 := l.TotalEnergy(r)
		for s := 0; s < 100; s++ {
			l.Solve(r, d, 0.2)
		}
		e1 := l.TotalEnergy(r)
		if e1 > 4*e0 || e1 < e0/4 {
			t.Errorf("rank %d: vacuum wave energy drifted %g -> %g", r.Rank(), e0, e1)
		}
		energies[r.Rank()] = e1
	})
	for i := 1; i < p; i++ {
		if energies[i] != energies[0] {
			t.Errorf("TotalEnergy disagrees across ranks: %v", energies)
		}
	}
}
