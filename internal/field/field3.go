// The three-dimensional field substrate: Local3 mirrors Local on a 3-D
// BLOCK submesh with a one-point halo on all six faces. The update is the
// full 3-D curl form of Maxwell's equations with central differences — a
// 6-point stencil, so face halos (no edges or corners) suffice, and the
// halo exchange stays at exactly six coalesced messages per refresh.

package field

import (
	"math"

	"picpar/internal/comm"
	"picpar/internal/mesh3"
	"picpar/internal/par"
)

// Local3 is the field storage of one rank in three dimensions: the owned
// submesh plus a one-point halo on all sides. Owned local coordinates run
// 0..Nx-1 × 0..Ny-1 × 0..Nz-1; halo coordinates extend to −1 and Nx (Ny,
// Nz).
type Local3 struct {
	I0, J0, K0 int // global coordinates of owned point (0, 0, 0)
	Nx, Ny, Nz int // owned extents

	Ex, Ey, Ez []float64
	Bx, By, Bz []float64
	Jx, Jy, Jz []float64
	Rho        []float64

	strideX, strideY int // strideX = Nx+2, strideY = (Nx+2)·(Ny+2)

	// pool parallelises the curl sweeps over owned z slabs; see Local.pool
	// for the determinism argument (identical in 3-D).
	pool *par.Pool
	task sweepTask3
}

// SetPool installs the shared-memory worker pool the update sweeps run on;
// nil (or a 1-worker pool) keeps the sequential loops.
func (l *Local3) SetPool(p *par.Pool) { l.pool = p }

// sweepTask3 is the par.Task of one 3-D curl sweep: slabs [kLo, kHi).
type sweepTask3 struct {
	l    *Local3
	dt   float64
	comp Components
}

func (t *sweepTask3) Work(_, kLo, kHi int) {
	if t.comp == CompE {
		t.l.updateESlabs(t.dt, kLo, kHi)
	} else {
		t.l.updateBSlabs(t.dt, kLo, kHi)
	}
}

// NewLocal3 allocates zeroed fields for the owned region of rank r under
// distribution d.
func NewLocal3(d *mesh3.Dist, r int) *Local3 {
	i0, i1, j0, j1, k0, k1 := d.Bounds(r)
	nx, ny, nz := i1-i0, j1-j0, k1-k0
	l := &Local3{
		I0: i0, J0: j0, K0: k0,
		Nx: nx, Ny: ny, Nz: nz,
		strideX: nx + 2, strideY: (nx + 2) * (ny + 2),
	}
	n := (nx + 2) * (ny + 2) * (nz + 2)
	l.Ex, l.Ey, l.Ez = make([]float64, n), make([]float64, n), make([]float64, n)
	l.Bx, l.By, l.Bz = make([]float64, n), make([]float64, n), make([]float64, n)
	l.Jx, l.Jy, l.Jz = make([]float64, n), make([]float64, n), make([]float64, n)
	l.Rho = make([]float64, n)
	return l
}

// Idx maps local coordinates (i ∈ [−1, Nx], j ∈ [−1, Ny], k ∈ [−1, Nz]) to
// the halo array offset.
func (l *Local3) Idx(i, j, k int) int {
	return (k+1)*l.strideY + (j+1)*l.strideX + (i + 1)
}

// Contains reports whether global grid point (gi, gj, gk) is owned by this
// submesh.
func (l *Local3) Contains(gi, gj, gk int) bool {
	return gi >= l.I0 && gi < l.I0+l.Nx &&
		gj >= l.J0 && gj < l.J0+l.Ny &&
		gk >= l.K0 && gk < l.K0+l.Nz
}

// ZeroSources clears J and Rho in preparation for a new scatter phase.
func (l *Local3) ZeroSources() {
	for i := range l.Jx {
		l.Jx[i], l.Jy[i], l.Jz[i], l.Rho[i] = 0, 0, 0, 0
	}
}

// fieldSolveWorkPerPoint3 is the modelled compute units for one 3-D
// grid-point update of one curl step: 6 components × (4 differences + 2
// multiply-adds) ≈ 36 flops.
const fieldSolveWorkPerPoint3 = 36

// UpdateE advances E by dt using ∂E/∂t = ∇×B − J with central differences.
// The B halo must be current. Compute cost is charged to r's current phase.
func (l *Local3) UpdateE(r comm.Transport, dt float64) {
	if l.pool != nil && l.pool.Workers() > 1 {
		l.task = sweepTask3{l: l, dt: dt, comp: CompE}
		l.pool.Run(l.Nz, &l.task)
	} else {
		l.updateESlabs(dt, 0, l.Nz)
	}
	r.Compute(l.Nx * l.Ny * l.Nz * fieldSolveWorkPerPoint3)
}

func (l *Local3) updateESlabs(dt float64, kLo, kHi int) {
	sx, sy := l.strideX, l.strideY
	for k := kLo; k < kHi; k++ {
		for j := 0; j < l.Ny; j++ {
			for i := 0; i < l.Nx; i++ {
				c := l.Idx(i, j, k)
				dBzDy := (l.Bz[c+sx] - l.Bz[c-sx]) / 2
				dByDz := (l.By[c+sy] - l.By[c-sy]) / 2
				dBxDz := (l.Bx[c+sy] - l.Bx[c-sy]) / 2
				dBzDx := (l.Bz[c+1] - l.Bz[c-1]) / 2
				dByDx := (l.By[c+1] - l.By[c-1]) / 2
				dBxDy := (l.Bx[c+sx] - l.Bx[c-sx]) / 2
				l.Ex[c] += dt * (dBzDy - dByDz - l.Jx[c])
				l.Ey[c] += dt * (dBxDz - dBzDx - l.Jy[c])
				l.Ez[c] += dt * (dByDx - dBxDy - l.Jz[c])
			}
		}
	}
}

// UpdateB advances B by dt using ∂B/∂t = −∇×E. The E halo must be current.
func (l *Local3) UpdateB(r comm.Transport, dt float64) {
	if l.pool != nil && l.pool.Workers() > 1 {
		l.task = sweepTask3{l: l, dt: dt, comp: CompB}
		l.pool.Run(l.Nz, &l.task)
	} else {
		l.updateBSlabs(dt, 0, l.Nz)
	}
	r.Compute(l.Nx * l.Ny * l.Nz * fieldSolveWorkPerPoint3)
}

func (l *Local3) updateBSlabs(dt float64, kLo, kHi int) {
	sx, sy := l.strideX, l.strideY
	for k := kLo; k < kHi; k++ {
		for j := 0; j < l.Ny; j++ {
			for i := 0; i < l.Nx; i++ {
				c := l.Idx(i, j, k)
				dEzDy := (l.Ez[c+sx] - l.Ez[c-sx]) / 2
				dEyDz := (l.Ey[c+sy] - l.Ey[c-sy]) / 2
				dExDz := (l.Ex[c+sy] - l.Ex[c-sy]) / 2
				dEzDx := (l.Ez[c+1] - l.Ez[c-1]) / 2
				dEyDx := (l.Ey[c+1] - l.Ey[c-1]) / 2
				dExDy := (l.Ex[c+sx] - l.Ex[c-sx]) / 2
				l.Bx[c] += dt * (-(dEzDy - dEyDz))
				l.By[c] += dt * (-(dExDz - dEzDx))
				l.Bz[c] += dt * (-(dEyDx - dExDy))
			}
		}
	}
}

// Halo exchange tags for the z direction (x and y reuse the 2-D tags).
const (
	tagHaloZLow  comm.Tag = comm.TagUser + 14
	tagHaloZHigh comm.Tag = comm.TagUser + 15
)

func (l *Local3) comps(c Components) [3][]float64 {
	if c == CompE {
		return [3][]float64{l.Ex, l.Ey, l.Ez}
	}
	return [3][]float64{l.Bx, l.By, l.Bz}
}

// ExchangeHalo fills the one-point face halos of the selected components
// from the six neighbouring ranks with periodic global boundaries. As in
// 2-D, the three components travelling in the same direction are coalesced
// into a single message — six messages of 3·(face extent) values per rank.
// The 6-point stencil needs no edge or corner halos, so owned faces
// suffice in every direction.
func (l *Local3) ExchangeHalo(r comm.Transport, d *mesh3.Dist, which Components) {
	f := l.comps(which)
	left, right, down, up, back, front := d.Neighbours(r.Rank())

	// X direction: owned faces i=0 and i=Nx−1 (extent Ny×Nz per component).
	sendFaceX := func(i int) []float64 {
		buf := make([]float64, 0, 3*l.Ny*l.Nz)
		for c := 0; c < 3; c++ {
			for k := 0; k < l.Nz; k++ {
				for j := 0; j < l.Ny; j++ {
					buf = append(buf, f[c][l.Idx(i, j, k)])
				}
			}
		}
		return buf
	}
	fillFaceX := func(i int, buf []float64) {
		o := 0
		for c := 0; c < 3; c++ {
			for k := 0; k < l.Nz; k++ {
				for j := 0; j < l.Ny; j++ {
					f[c][l.Idx(i, j, k)] = buf[o]
					o++
				}
			}
		}
	}
	comm.SendFloat64s(r, left, tagHaloXLow, sendFaceX(0))
	comm.SendFloat64s(r, right, tagHaloXHigh, sendFaceX(l.Nx-1))
	fillFaceX(l.Nx, comm.RecvFloat64s(r, right, tagHaloXLow))
	fillFaceX(-1, comm.RecvFloat64s(r, left, tagHaloXHigh))

	// Y direction: owned faces j=0 and j=Ny−1 (extent Nx×Nz).
	sendFaceY := func(j int) []float64 {
		buf := make([]float64, 0, 3*l.Nx*l.Nz)
		for c := 0; c < 3; c++ {
			for k := 0; k < l.Nz; k++ {
				for i := 0; i < l.Nx; i++ {
					buf = append(buf, f[c][l.Idx(i, j, k)])
				}
			}
		}
		return buf
	}
	fillFaceY := func(j int, buf []float64) {
		o := 0
		for c := 0; c < 3; c++ {
			for k := 0; k < l.Nz; k++ {
				for i := 0; i < l.Nx; i++ {
					f[c][l.Idx(i, j, k)] = buf[o]
					o++
				}
			}
		}
	}
	comm.SendFloat64s(r, down, tagHaloYLow, sendFaceY(0))
	comm.SendFloat64s(r, up, tagHaloYHigh, sendFaceY(l.Ny-1))
	fillFaceY(l.Ny, comm.RecvFloat64s(r, up, tagHaloYLow))
	fillFaceY(-1, comm.RecvFloat64s(r, down, tagHaloYHigh))

	// Z direction: owned faces k=0 and k=Nz−1 (extent Nx×Ny).
	sendFaceZ := func(k int) []float64 {
		buf := make([]float64, 0, 3*l.Nx*l.Ny)
		for c := 0; c < 3; c++ {
			for j := 0; j < l.Ny; j++ {
				for i := 0; i < l.Nx; i++ {
					buf = append(buf, f[c][l.Idx(i, j, k)])
				}
			}
		}
		return buf
	}
	fillFaceZ := func(k int, buf []float64) {
		o := 0
		for c := 0; c < 3; c++ {
			for j := 0; j < l.Ny; j++ {
				for i := 0; i < l.Nx; i++ {
					f[c][l.Idx(i, j, k)] = buf[o]
					o++
				}
			}
		}
	}
	comm.SendFloat64s(r, back, tagHaloZLow, sendFaceZ(0))
	comm.SendFloat64s(r, front, tagHaloZHigh, sendFaceZ(l.Nz-1))
	fillFaceZ(l.Nz, comm.RecvFloat64s(r, front, tagHaloZLow))
	fillFaceZ(-1, comm.RecvFloat64s(r, back, tagHaloZHigh))
}

// Solve performs one full leapfrog field-solve step: refresh B halo, update
// E, refresh E halo, update B.
func (l *Local3) Solve(r comm.Transport, d *mesh3.Dist, dt float64) {
	l.ExchangeHalo(r, d, CompB)
	l.UpdateE(r, dt)
	l.ExchangeHalo(r, d, CompE)
	l.UpdateB(r, dt)
}

// Energy returns this rank's field energy ½Σ(E² + B²) over owned points.
func (l *Local3) Energy() float64 {
	e := 0.0
	for k := 0; k < l.Nz; k++ {
		for j := 0; j < l.Ny; j++ {
			for i := 0; i < l.Nx; i++ {
				c := l.Idx(i, j, k)
				e += l.Ex[c]*l.Ex[c] + l.Ey[c]*l.Ey[c] + l.Ez[c]*l.Ez[c] +
					l.Bx[c]*l.Bx[c] + l.By[c]*l.By[c] + l.Bz[c]*l.Bz[c]
			}
		}
	}
	return e / 2
}

// MaxAbs returns the largest |value| across the six field components of the
// owned region.
func (l *Local3) MaxAbs() float64 {
	m := 0.0
	for k := 0; k < l.Nz; k++ {
		for j := 0; j < l.Ny; j++ {
			for i := 0; i < l.Nx; i++ {
				c := l.Idx(i, j, k)
				for _, v := range [6]float64{l.Ex[c], l.Ey[c], l.Ez[c], l.Bx[c], l.By[c], l.Bz[c]} {
					if a := math.Abs(v); a > m {
						m = a
					}
				}
			}
		}
	}
	return m
}
