module picpar

go 1.22
