// Package picpar is a Go reproduction of "Dynamic Alignment and
// Distribution of Irregularly Coupled Data Arrays for Scalable
// Parallelization of Particle-in-Cell Problems" (Liao, Ou, Ranka,
// IPPS 1996).
//
// It provides a complete relativistic electromagnetic particle-in-cell
// simulation — 2d3v by default, 3d3v with Config.Dims = 3 over the same
// dimension-generic pipeline — parallelised over an SPMD runtime of
// goroutine "ranks" with a hand-rolled message-passing layer, and — the
// paper's contribution — the machinery that keeps the two irregularly
// coupled data arrays (particles and mesh fields) aligned, balanced and
// cheap to communicate between:
//
//   - Hilbert (and snake/row-major/Morton) space-filling-curve particle
//     ordering aligned with an SFC-numbered BLOCK mesh distribution,
//   - bucket-based incremental sorting for fast particle redistribution,
//   - order-maintaining load balancing,
//   - static / periodic / dynamic (Stop-At-Rise) redistribution policies,
//   - ghost-point communication with duplicate-access removal and message
//     coalescing.
//
// Quick start:
//
//	res, err := picpar.Run(picpar.Config{
//		Grid:         picpar.NewGrid(128, 64),
//		P:            32,
//		NumParticles: 32768,
//		Distribution: picpar.DistIrregular,
//		Iterations:   200,
//		Policy:       picpar.DynamicPolicy(),
//	})
//
// Execution times in Result are simulated seconds under a two-level
// (τ, μ, δ) cost model defaulting to CM-5-like constants, which is what
// makes the paper's published trade-offs reproducible on any host.
package picpar

import (
	"time"

	"picpar/internal/comm"
	"picpar/internal/machine"
	"picpar/internal/mesh"
	"picpar/internal/mesh3"
	"picpar/internal/particle"
	"picpar/internal/pic"
	"picpar/internal/policy"
	"picpar/internal/sfc"
)

// Config describes a simulation run. See the field documentation in
// internal/pic for details; zero values select sensible defaults (Hilbert
// indexing, static policy, CM-5 machine constants, direct address table).
type Config = pic.Config

// Result aggregates a run's measurements: per-iteration records, total and
// per-phase times, overhead, efficiency, and redistribution counts.
type Result = pic.Result

// IterationRecord is one iteration's measurements (max over ranks).
type IterationRecord = pic.IterationRecord

// Grid is the global 2-D mesh geometry.
type Grid = mesh.Grid

// Grid3 is the global 3-D mesh geometry, used when Config.Dims is 3.
type Grid3 = mesh3.Grid

// MachineParams are the two-level cost-model constants (τ, μ, δ).
type MachineParams = machine.Params

// PolicyFactory constructs per-rank redistribution policies.
type PolicyFactory = policy.Factory

// Run executes a simulation.
func Run(cfg Config) (*Result, error) { return pic.Run(cfg) }

// NewGrid builds an Nx×Ny mesh with unit cells.
func NewGrid(nx, ny int) Grid { return mesh.NewGrid(nx, ny) }

// NewGrid3 builds an Nx×Ny×Nz mesh with unit cells; set Config.Dims to 3
// and Config.Grid3 to run the same pipeline in three dimensions.
func NewGrid3(nx, ny, nz int) Grid3 { return mesh3.NewGrid(nx, ny, nz) }

// Particle distribution names for Config.Distribution.
const (
	DistUniform   = particle.DistUniform
	DistIrregular = particle.DistIrregular
	DistTwoStream = particle.DistTwoStream
	DistBeam      = particle.DistBeam
	DistSpike     = particle.DistSpike
	DistCollapse  = particle.DistCollapse
)

// Indexing scheme names for Config.Indexing.
const (
	IndexHilbert  = sfc.SchemeHilbert
	IndexSnake    = sfc.SchemeSnake
	IndexRowMajor = sfc.SchemeRowMajor
	IndexMorton   = sfc.SchemeMorton
)

// Indexer linearises the cells of a 2-D grid (see Config.Indexing).
type Indexer = sfc.Indexer

// NewIndexer builds the named space-filling-curve indexer for a w×h cell
// grid.
func NewIndexer(scheme string, w, h int) (Indexer, error) { return sfc.New(scheme, w, h) }

// StaticPolicy never redistributes particles.
func StaticPolicy() PolicyFactory { return policy.NewStatic() }

// PeriodicPolicy redistributes every k iterations.
func PeriodicPolicy(k int) PolicyFactory { return policy.NewPeriodic(k) }

// DynamicPolicy redistributes when the Stop-At-Rise condition
// (t1−t0)·(i1−i0) ≥ T_redistribution is met.
func DynamicPolicy() PolicyFactory { return policy.NewDynamic() }

// AdaptivePolicy redistributes on the Stop-At-Rise condition and, at each
// firing, rebuilds into whichever layout strategy scores the lowest
// estimated max per-rank cost on the live per-cell cost ledger.
func AdaptivePolicy() PolicyFactory { return policy.NewAdaptive() }

// AdaptivePolicyEvery is AdaptivePolicy on a fixed every-k cadence.
func AdaptivePolicyEvery(k int) PolicyFactory { return policy.NewAdaptiveEvery(k) }

// Strategy names a particle layout: how the globally sorted sequence is
// split (equal-count or cost-weighted) and how particles move (Lagrangian
// redistribution or Eulerian migration). The zero value is the classic
// equal-count Lagrangian layout — the byte-identical default.
type Strategy = policy.Strategy

// The named layout strategies.
var (
	StrategyEqualCount   = policy.EqualCount
	StrategyCostWeighted = policy.CostWeighted
	StrategyEulerian     = policy.Eulerian
)

// ParseStrategy resolves a strategy name ("equal-count", "cost-weighted",
// "eulerian"); the empty name is equal-count.
func ParseStrategy(name string) (Strategy, error) { return policy.ParseStrategy(name) }

// WithStrategy pins the layout strategy a policy's firings decide, for
// policies that support one (Periodic, Dynamic); Static passes through.
func WithStrategy(f PolicyFactory, s Strategy) PolicyFactory { return policy.WithStrategy(f, s) }

// CM5Machine returns CM-5-like cost-model constants (the paper's testbed).
func CM5Machine() MachineParams { return machine.CM5() }

// ModernMachine returns contemporary-cluster cost-model constants.
func ModernMachine() MachineParams { return machine.Modern() }

// Transport is the per-rank message-passing interface; Config.Transport
// accepts a decorator chain over it (see DESIGN.md "The decorator stack").
type Transport = comm.Transport

// FaultPlan is a deterministic, seeded fault-injection schedule for the
// Faulty transport decorator: per-link drop/duplicate/reorder/delay
// probabilities with optional rank, tag and phase filters.
type FaultPlan = comm.FaultPlan

// Faulty injects the faults of a FaultPlan; Reliable recovers them.
type Faulty = comm.Faulty

// NewFaulty builds a fault-injecting transport decorator from plan.
func NewFaulty(plan FaultPlan) *Faulty { return comm.NewFaulty(plan) }

// Reliable is the reliable-delivery transport decorator: it recovers
// drops, duplicates and reorderings injected by Faulty underneath it, or
// fails with a diagnostic *DeliveryError when the retry budget is
// exhausted — never by hanging.
type Reliable = comm.Reliable

// ReliableConfig tunes the reliability layer's retry budget and simulated
// backoff; the zero value selects sensible defaults.
type ReliableConfig = comm.ReliableConfig

// NewReliable builds a reliable-delivery transport decorator.
func NewReliable(cfg ReliableConfig) *Reliable { return comm.NewReliable(cfg) }

// DeliveryError is the terminal, diagnostic delivery failure: it names the
// rank, peer, tag, accounting phase and attempt count of the message that
// could not be delivered.
type DeliveryError = comm.DeliveryError

// AsDeliveryError extracts a *DeliveryError from a recovered panic value,
// or returns nil.
func AsDeliveryError(v any) *DeliveryError { return comm.AsDeliveryError(v) }

// TraceCounts is one bucket of traced traffic (messages and modelled bytes
// in each direction).
type TraceCounts = comm.TraceCounts

// Tracer records per-rank, per-phase, per-tag traffic flowing through the
// transports it wraps.
type Tracer = comm.Tracer

// NewTracer builds a traffic-tracing transport decorator.
func NewTracer() *Tracer { return comm.NewTracer() }

// TransportError is the structural-misuse failure of the comm layer:
// invalid ranks, operations on a torn-down endpoint, unencodable message
// bodies. It marks a programming error and is never retried.
type TransportError = comm.TransportError

// RankPanic wraps a panic that escaped one rank's function — including the
// typed DeliveryError/TransportError panics of the transport — so the
// launcher can report which rank failed and why.
type RankPanic = comm.RankPanic

// NetConfig describes one rank's endpoint of a TCP-backed world: the
// coordinator address, rank identity, cost-model constants, and the
// supervision timeouts (dial retry/backoff, heartbeats, drain).
type NetConfig = comm.NetConfig

// Coordinator is the rendezvous service a TCP world assembles through.
type Coordinator = comm.Coordinator

// RankProc is one spawned rank process under launcher supervision.
type RankProc = comm.RankProc

// RankFailure records how one supervised rank process exited.
type RankFailure = comm.RankFailure

// LaunchError aggregates the abnormal rank exits of one supervised launch.
type LaunchError = comm.LaunchError

// RespawnFunc builds a replacement process for a dead rank during an
// elastic run (see SuperviseRanksElastic).
type RespawnFunc = comm.RespawnFunc

// StartCoordinator binds the rendezvous listener for a world of p ranks
// with the default assembly timeout; call Serve to assemble the world.
func StartCoordinator(addr string, p int) (*Coordinator, error) {
	return comm.StartCoordinator(addr, p, 0)
}

// SuperviseRanks starts (if needed) and babysits one OS process per rank:
// on the first abnormal exit it grants the grace period for peers to print
// their own diagnostics, kills stragglers, and returns a *LaunchError
// naming every failed rank.
// An optional trailing world description (e.g. "topology neighbor-sparse,
// P=4") is carried on the LaunchError, attributing refused dials in sparse
// worlds to the world's configuration.
func SuperviseRanks(procs []*RankProc, grace time.Duration, world ...string) error {
	return comm.SuperviseRanks(procs, grace, world...)
}

// SuperviseRanksElastic is SuperviseRanks with elastic recovery: a rank
// that exits abnormally while respawn budget remains is relaunched via
// respawn instead of failing the run, and the surviving rank processes
// (running under NetRankElastic) re-assemble through the rendezvous rolled
// back to the latest complete checkpoint epoch.
func SuperviseRanksElastic(procs []*RankProc, grace time.Duration, respawn RespawnFunc, maxRespawns int, world ...string) error {
	return comm.SuperviseRanksElastic(procs, grace, respawn, maxRespawns, world...)
}

// RunNet runs this process's rank of the configured simulation over the
// TCP backend (see NetConfig). Rank 0 returns the Result; other ranks
// return (nil, nil) on success.
func RunNet(ncfg NetConfig, cfg Config) (*Result, error) { return pic.RunNet(ncfg, cfg) }

// NetRank joins a TCP world and runs fn as this process's rank, with
// crash-safe teardown; see comm.NetRank.
func NetRank(ncfg NetConfig, wrap func(Transport) Transport, fn func(Transport)) (machine.Stats, error) {
	return comm.NetRank(ncfg, wrap, fn)
}

// NetRankElastic is NetRank with rejoin-on-world-death: when the world
// dies under this rank (a peer was killed), it parks with capped backoff
// and re-registers through the rendezvous under the same rank identity
// until the world re-assembles or the rejoin budget is exhausted.
func NetRankElastic(ncfg NetConfig, wrap func(Transport) Transport, fn func(Transport)) (machine.Stats, error) {
	return comm.NetRankElastic(ncfg, wrap, fn)
}

// MachineStats is one rank's per-phase time and traffic ledger.
type MachineStats = machine.Stats

// Topology names accepted by Config.Topology: the classic any-to-any
// full mesh, the two sparse link sets (neighbor-sparse direct exchange,
// systolic-ring pulsed exchange), and the hierarchical host/gateway
// transport ("hierarchical" or "hierarchical:H"). Physics is identical
// under every topology.
const (
	TopologyFullMesh       = pic.TopologyFullMesh
	TopologyNeighborSparse = pic.TopologyNeighborSparse
	TopologySystolicRing   = pic.TopologySystolicRing
	TopologyHierarchical   = pic.TopologyHierarchical
)

// Topology is the comm layer's link-set descriptor: which rank pairs may
// exchange point-to-point messages. The TCP backend assembles exactly its
// links (O(P·k) sockets for sparse descriptors); the goroutine backend
// enforces it with typed errors on out-of-topology sends.
type Topology = comm.Topology

// TopologyError reports a send or receive outside the world's topology; it
// unwraps to ErrOutOfTopology and names the rank, peer and peer set.
type TopologyError = comm.TopologyError

// ErrOutOfTopology is the sentinel every TopologyError wraps.
var ErrOutOfTopology = comm.ErrOutOfTopology

// TopologyFor builds the comm.Topology descriptor cfg's Topology field
// names (sized for cfg.P) — what NetConfig.Topology expects when
// assembling a sparse TCP world by hand. Hierarchical is rejected: it
// replaces the transport rather than the link set (use Run).
func TopologyFor(cfg Config) (*Topology, error) { return pic.TopologyFor(cfg) }

// NewFullMesh, NewRing and NewNeighborSparse build topology descriptors
// directly at the comm layer. Every descriptor includes the collective
// skeleton (±2^k ring offsets), so collectives run unchanged on all of
// them.
func NewFullMesh(p int) *Topology { return comm.NewFullMesh(p) }

// NewRing builds the pure ring descriptor (the collective skeleton alone).
func NewRing(p int) *Topology { return comm.NewRing(p) }

// NewNeighborSparse builds the descriptor whose links are the pairs the
// adjacent predicate admits, plus the collective skeleton.
func NewNeighborSparse(p int, adjacent func(a, b int) bool) *Topology {
	return comm.NewNeighborSparse(p, adjacent)
}

// Exchanger is an all-to-many exchange protocol over a Transport: the
// classic pairwise schedule, the P−1-pulse systolic ring, or the
// neighbor-only stencil exchange.
type Exchanger = comm.Exchanger

// SocketCount reports the number of live TCP peer connections beneath a
// (possibly decorated) transport, and whether the transport is TCP-backed
// at all — the measured quantity behind the O(P²) → O(P·k) traffic gate.
func SocketCount(t Transport) (int, bool) { return comm.SocketCount(t) }
