// Skewedload: run the spike distribution — a dense Gaussian clump over a
// sparse background, the workload where per-particle cost is genuinely
// heterogeneous — under the equal-count split, the cost-weighted split and
// the adaptive policy, and compare the per-rank busy-time imbalance each
// leaves. Equal-count gives every rank the same number of particles, but
// the sparse-background ranks straddle more mesh blocks and pay more ghost
// traffic per particle; the cost-weighted split uses the live cost ledger
// to shift the cuts, and the adaptive policy discovers that on its own.
//
//	go run ./examples/skewedload
package main

import (
	"fmt"
	"log"
	"os"

	"picpar"
	"picpar/internal/diag"
	"picpar/internal/mesh"
	"picpar/internal/particle"
)

func main() {
	g := mesh.NewGrid(128, 64)
	s, err := particle.Generate(particle.Config{
		N: 4096, Lx: g.Lx, Ly: g.Ly, Distribution: particle.DistSpike, Seed: 11,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("spike distribution (4096 particles, 128x64 domain):")
	diag.DensityMap(os.Stdout, g, s, 64, 16)
	fmt.Println()

	runs := []struct {
		name   string
		policy picpar.PolicyFactory
	}{
		{"equal-count", picpar.WithStrategy(picpar.PeriodicPolicy(5), picpar.StrategyEqualCount)},
		{"cost-weighted", picpar.WithStrategy(picpar.PeriodicPolicy(5), picpar.StrategyCostWeighted)},
		{"adaptive", picpar.AdaptivePolicyEvery(5)},
	}
	fmt.Println("periodic redistribution every 5 iterations, 8 ranks, 30 iterations:")
	for _, r := range runs {
		res, err := picpar.Run(picpar.Config{
			Grid:         g,
			P:            8,
			NumParticles: 4096,
			Distribution: picpar.DistSpike,
			Seed:         11,
			Iterations:   30,
			Policy:       r.policy,
		})
		if err != nil {
			log.Fatal(err)
		}
		imbs := make([]float64, len(res.Records))
		sum, n := 0.0, 0
		for i, rec := range res.Records {
			imbs[i] = rec.BusyImbalance
			if i >= 10 {
				sum += rec.BusyImbalance
				n++
			}
		}
		chosen := ""
		for name, count := range res.RedistByStrategy {
			chosen += fmt.Sprintf(" %s:%d", name, count)
		}
		fmt.Printf("  %-14s busy imbalance %s  mean %.4f  redists%s\n",
			r.name, diag.Sparkline(imbs), sum/float64(n), chosen)
	}
	fmt.Println("\nthe cost-weighted split trades a little total traffic (the cuts no")
	fmt.Println("longer align with mesh blocks) for markedly flatter per-rank busy")
	fmt.Println("time — and the adaptive policy picks it from the ledger unprompted.")
}
