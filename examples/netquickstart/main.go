// Netquickstart: the quickstart physics, but every rank joins a real TCP
// world through the public rendezvous API instead of the in-process
// goroutine backend. The ranks here happen to live in one process for a
// self-contained example — each one dials the coordinator, handshakes,
// and exchanges every message over loopback sockets exactly as separate
// OS processes (or hosts) would. Swap the goroutines for `picsim -net
// <addr> -rank k` invocations and nothing else changes.
//
//	go run ./examples/netquickstart
package main

import (
	"fmt"
	"log"
	"sync"
)

import "picpar"

const ranks = 4

func main() {
	co, err := picpar.StartCoordinator("127.0.0.1:0", ranks)
	if err != nil {
		log.Fatal(err)
	}
	go func() {
		if err := co.Serve(); err != nil {
			log.Fatal(err)
		}
	}()

	cfg := picpar.Config{
		Grid:         picpar.NewGrid(64, 32),
		NumParticles: 8192,
		Distribution: picpar.DistUniform,
		Seed:         1,
		Iterations:   100,
		Policy:       picpar.DynamicPolicy(),
	}

	var (
		wg   sync.WaitGroup
		res  *picpar.Result
		errs = make([]error, ranks)
	)
	for k := 0; k < ranks; k++ {
		wg.Add(1)
		go func(k int) {
			defer wg.Done()
			r, err := picpar.RunNet(picpar.NetConfig{
				Coordinator: co.Addr(),
				Rank:        k,
				Size:        ranks,
			}, cfg)
			errs[k] = err
			if k == 0 {
				res = r // rank 0 aggregates the world's stats
			}
		}(k)
	}
	wg.Wait()
	for k, err := range errs {
		if err != nil {
			log.Fatalf("rank %d: %v", k, err)
		}
	}

	fmt.Println("netquickstart: 8192 particles, 64x32 mesh, 4 ranks over loopback TCP")
	fmt.Printf("  total execution time (simulated CM-5 seconds): %.3f\n", res.TotalTime)
	fmt.Printf("  parallel efficiency:                           %.3f\n", res.Efficiency)
	fmt.Printf("  redistributions triggered by the SAR policy:   %d\n", res.NumRedistributions)
}
