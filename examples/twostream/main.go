// Twostream: the classic two-stream instability — counter-streaming
// electron populations feed energy from particles into growing
// electromagnetic fields. The example tracks the energy exchange, showing
// the PIC physics engine doing real plasma physics while the runtime keeps
// the data arrays aligned.
//
//	go run ./examples/twostream
package main

import (
	"fmt"
	"log"

	"picpar"
)

func main() {
	res, err := picpar.Run(picpar.Config{
		Grid:         picpar.NewGrid(64, 16),
		P:            8,
		NumParticles: 16384,
		Distribution: picpar.DistTwoStream,
		Drift:        0.4,
		Thermal:      0.02,
		MacroCharge:  -0.05,
		Seed:         5,
		Iterations:   300,
		Policy:       picpar.DynamicPolicy(),
		Diagnostics:  true,
		DiagEvery:    20,
	})
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("twostream: counter-streaming beams, 64x16 mesh, 16384 particles, 8 ranks")
	fmt.Printf("%6s %16s %16s %14s\n", "iter", "fieldEnergy", "kineticEnergy", "iterTime(s)")
	var e0 float64
	for _, rec := range res.Records {
		if rec.Iter%20 != 0 {
			continue
		}
		if rec.Iter == 0 {
			e0 = rec.FieldEnergy
		}
		fmt.Printf("%6d %16.6g %16.6g %14.4f\n", rec.Iter, rec.FieldEnergy, rec.KineticEnergy, rec.Time)
	}
	final := res.Records[len(res.Records)-1]
	_ = final

	grew := false
	for _, rec := range res.Records {
		if rec.FieldEnergy > 10*e0 && e0 >= 0 {
			grew = true
			break
		}
	}
	if grew {
		fmt.Println("\nField energy grew by over an order of magnitude: the instability developed.")
	} else {
		fmt.Println("\nField energy history printed above.")
	}
	fmt.Printf("Total simulated time %.3f s with %d redistributions.\n",
		res.TotalTime, res.NumRedistributions)
}
