// Indexing: visualise how Hilbert and snakelike orderings carve a 32x16
// cell grid into 8 processor subdomains (the paper's Figures 9-10), and
// how the subdomain shapes differ: Hilbert chunks are blocky and compact,
// snake chunks are long thin strips with larger perimeters — which is
// exactly why Hilbert-indexed particle subdomains generate fewer ghost
// grid points.
//
//	go run ./examples/indexing
package main

import (
	"fmt"
	"log"

	"picpar"
)

const (
	w, h  = 32, 16
	ranks = 8
)

func main() {
	for _, scheme := range []string{picpar.IndexHilbert, picpar.IndexSnake, picpar.IndexMorton} {
		ix, err := picpar.NewIndexer(scheme, w, h)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%s ordering: cell -> rank map (%d ranks), one letter per cell\n", scheme, ranks)
		perim := 0
		for y := h - 1; y >= 0; y-- {
			for x := 0; x < w; x++ {
				r := rankOf(ix.Index(x, y))
				fmt.Printf("%c", 'a'+r)
				// Count subdomain boundary edges (perimeter proxy).
				if x+1 < w && rankOf(ix.Index(x+1, y)) != r {
					perim++
				}
				if y+1 < h && rankOf(ix.Index(x, y+1)) != r {
					perim++
				}
			}
			fmt.Println()
		}
		fmt.Printf("internal boundary edges: %d (smaller = more compact subdomains)\n\n", perim)
	}
	fmt.Println("Hilbert should show compact blocks, snake long stripes; the boundary")
	fmt.Println("count is the communication-perimeter proxy from the paper's Section 5.1.")
}

// rankOf assigns equal contiguous index ranges to ranks.
func rankOf(idx int) int {
	share := w * h / ranks
	r := idx / share
	if r >= ranks {
		r = ranks - 1
	}
	return r
}
