// Distributions: render the paper's Figure 15 — the two experimental
// particle distributions (uniform, and irregular concentrated at the domain
// centre) — as ASCII density maps, then follow the irregular case through a
// short simulation and show how the density spreads, which is precisely why
// redistribution becomes necessary.
//
//	go run ./examples/distributions
package main

import (
	"fmt"
	"log"
	"os"

	"picpar"
	"picpar/internal/diag"
	"picpar/internal/mesh"
	"picpar/internal/particle"
)

func main() {
	g := mesh.NewGrid(64, 32)

	for _, dist := range []string{particle.DistUniform, particle.DistIrregular} {
		s, err := particle.Generate(particle.Config{
			N: 16384, Lx: g.Lx, Ly: g.Ly, Distribution: dist, Seed: 15,
		})
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("initial %s distribution (16384 particles, 64x32 domain):\n", dist)
		diag.DensityMap(os.Stdout, g, s, 64, 16)
		fmt.Println()
	}

	// Evolve the irregular case and show per-iteration cost growth under
	// the static policy as the blob expands.
	res, err := picpar.Run(picpar.Config{
		Grid:         picpar.NewGrid(64, 32),
		P:            8,
		NumParticles: 16384,
		Distribution: picpar.DistIrregular,
		Seed:         15,
		Iterations:   120,
		Thermal:      0.5,
		Policy:       picpar.StaticPolicy(),
	})
	if err != nil {
		log.Fatal(err)
	}
	times := make([]float64, len(res.Records))
	bytes := make([]float64, len(res.Records))
	for i, rec := range res.Records {
		times[i] = rec.Time
		bytes[i] = float64(rec.ScatterBytesSent)
	}
	fmt.Println("static policy, 120 iterations — the cost of never realigning:")
	fmt.Printf("  iteration time    %s\n", diag.Sparkline(diag.Downsample(times, 60)))
	fmt.Printf("  scatter traffic   %s\n", diag.Sparkline(diag.Downsample(bytes, 60)))
	fmt.Printf("  (time %.4fs -> %.4fs per iteration)\n",
		res.Records[0].Time, res.Records[len(res.Records)-1].Time)
}
