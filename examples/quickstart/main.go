// Quickstart: run a small uniform plasma on 8 simulated processors with
// dynamic redistribution and print the headline numbers.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"picpar"
)

func main() {
	res, err := picpar.Run(picpar.Config{
		Grid:         picpar.NewGrid(64, 32),
		P:            8,
		NumParticles: 8192,
		Distribution: picpar.DistUniform,
		Seed:         1,
		Iterations:   100,
		Policy:       picpar.DynamicPolicy(),
	})
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("quickstart: 8192 uniform particles, 64x32 mesh, 8 ranks, 100 iterations")
	fmt.Printf("  total execution time (simulated CM-5 seconds): %.3f\n", res.TotalTime)
	fmt.Printf("  computation on the critical path:              %.3f\n", res.ComputeMax)
	fmt.Printf("  parallel efficiency:                           %.3f\n", res.Efficiency)
	fmt.Printf("  redistributions triggered by the SAR policy:   %d (%.4f s)\n",
		res.NumRedistributions, res.RedistTime)
	fmt.Printf("  peak scatter-phase ghost traffic:              %d bytes, %d messages\n",
		res.MaxScatterBytes(), res.MaxScatterMsgs())

	// Per-iteration records carry everything Figures 17-19 plot.
	last := res.Records[len(res.Records)-1]
	fmt.Printf("  final iteration: %.4f s (%.4f s computation)\n", last.Time, last.Compute)
}
