// Quickstart in three dimensions: the same pipeline as the 2-D quickstart
// — Hilbert-aligned independent partitioning, SAR-triggered incremental
// redistribution — selected onto a 3-D geometry with Config.Dims.
//
//	go run ./examples/quickstart3d
package main

import (
	"fmt"
	"log"

	"picpar"
)

func main() {
	res, err := picpar.Run(picpar.Config{
		Dims:         3,
		Grid3:        picpar.NewGrid3(16, 16, 16),
		P:            8,
		NumParticles: 8192,
		Distribution: picpar.DistIrregular,
		Seed:         1,
		Iterations:   50,
		Policy:       picpar.DynamicPolicy(),
	})
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("quickstart3d: 8192 irregular particles, 16x16x16 mesh, 8 ranks, 50 iterations")
	fmt.Printf("  total execution time (simulated CM-5 seconds): %.3f\n", res.TotalTime)
	fmt.Printf("  computation on the critical path:              %.3f\n", res.ComputeMax)
	fmt.Printf("  parallel efficiency:                           %.3f\n", res.Efficiency)
	fmt.Printf("  redistributions triggered by the SAR policy:   %d (%.4f s)\n",
		res.NumRedistributions, res.RedistTime)
	fmt.Printf("  peak scatter-phase ghost traffic:              %d bytes, %d messages\n",
		res.MaxScatterBytes(), res.MaxScatterMsgs())

	last := res.Records[len(res.Records)-1]
	fmt.Printf("  final iteration: %.4f s (%.4f s computation)\n", last.Time, last.Compute)
}
