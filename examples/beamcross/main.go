// Beamcross: a compact relativistic beam crosses the domain — the workload
// where dynamic alignment matters most, because every particle leaves its
// original subdomain. The example runs the same beam under the static,
// best-guess periodic, and dynamic policies and prints the comparison the
// paper's Figure 20 makes.
//
//	go run ./examples/beamcross
package main

import (
	"fmt"
	"log"

	"picpar"
)

func main() {
	base := picpar.Config{
		Grid:         picpar.NewGrid(128, 32),
		P:            16,
		NumParticles: 16384,
		Distribution: picpar.DistBeam,
		Drift:        0.8, // relativistic drift: the beam sweeps the domain
		Thermal:      0.05,
		Seed:         3,
		Iterations:   250,
	}

	fmt.Println("beamcross: 16384-particle beam, 128x32 mesh, 16 ranks, 250 iterations")
	fmt.Printf("%-15s %12s %12s %12s %9s\n", "policy", "exec(s)", "redist(s)", "total(s)", "#redist")

	type entry struct {
		name string
		f    picpar.PolicyFactory
	}
	for _, e := range []entry{
		{"static", picpar.StaticPolicy()},
		{"periodic:50", picpar.PeriodicPolicy(50)},
		{"periodic:10", picpar.PeriodicPolicy(10)},
		{"dynamic", picpar.DynamicPolicy()},
	} {
		cfg := base
		cfg.Policy = e.f
		res, err := picpar.Run(cfg)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-15s %12.3f %12.3f %12.3f %9d\n",
			e.name, res.TotalTime-res.RedistTime, res.RedistTime, res.TotalTime, res.NumRedistributions)
	}

	fmt.Println("\nThe dynamic (Stop-At-Rise) policy lands at or near the best periodic")
	fmt.Println("period without any tuning — and it spends redistribution time only")
	fmt.Println("when the measured iteration-time rise justifies it.")
}
