#!/bin/sh
# Full CI gate: vet, build, race-enabled tests, and a short benchmark smoke
# run that exercises the radix sort and allocation assertions.
set -eu
cd "$(dirname "$0")/.."

echo "== go vet =="
go vet ./...

echo "== go build =="
go build ./...

echo "== go test -race =="
go test -race ./...

echo "== examples smoke =="
go run ./examples/quickstart >/dev/null
go run ./examples/indexing >/dev/null

echo "== bench smoke =="
go test -run NONE -bench BenchmarkLocalSort -benchtime 100x -benchmem .

echo "CI OK"
