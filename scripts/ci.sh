#!/bin/sh
# Full CI gate: vet, build, plain tests, race-enabled tests, the chaos soak
# (seeded fault plans through the Reliable stack, 2-D and 3-D), the
# per-phase traffic regression gate, the 2-D and 3-D golden pins, the
# multi-process TCP smoke (loopback golden + kill -9 crash detection), an
# examples smoke run, and a short benchmark smoke run that exercises the
# radix sort and allocation assertions.
set -eu
cd "$(dirname "$0")/.."

echo "== go vet =="
go vet ./...

echo "== go build =="
go build ./...

echo "== go test =="
go test ./...

echo "== go test -race =="
# internal/experiments alone takes ~9m under the race detector on an idle
# machine; the default per-package 10m limit leaves no headroom.
go test -race -timeout 30m ./...

echo "== chaos soak (2-D and 3-D) =="
go test -count=1 -run 'TestChaos' ./internal/comm/ ./internal/pic/

echo "== golden pins (2-D and 3-D) =="
go test -count=1 -run 'TestGolden' ./internal/pic/

echo "== 3-D smoke =="
go run ./cmd/picsim -dim 3 -mesh 16x16x16 -n 4096 -p 8 -iters 10 -dist irregular -policy dynamic >/dev/null

echo "== net smoke (multi-process TCP golden + crash detection) =="
sh scripts/netsmoke.sh

echo "== traffic gate =="
go run ./cmd/picbench -traffic

echo "== examples smoke =="
go run ./examples/quickstart >/dev/null
go run ./examples/quickstart3d >/dev/null
go run ./examples/netquickstart >/dev/null
go run ./examples/indexing >/dev/null

echo "== bench smoke =="
go test -run NONE -bench 'BenchmarkLocalSort|BenchmarkSimulationIteration3D' -benchtime 100x -benchmem .

echo "CI OK"
