#!/bin/sh
# Full CI gate: vet, build, plain tests, race-enabled tests, the chaos soak
# (seeded fault plans through the Reliable stack), the per-phase traffic
# regression gate, an examples smoke run, and a short benchmark smoke run
# that exercises the radix sort and allocation assertions.
set -eu
cd "$(dirname "$0")/.."

echo "== go vet =="
go vet ./...

echo "== go build =="
go build ./...

echo "== go test =="
go test ./...

echo "== go test -race =="
go test -race ./...

echo "== chaos soak =="
go test -count=1 -run 'TestChaos' ./internal/comm/ ./internal/pic/

echo "== traffic gate =="
go run ./cmd/picbench -traffic

echo "== examples smoke =="
go run ./examples/quickstart >/dev/null
go run ./examples/indexing >/dev/null

echo "== bench smoke =="
go test -run NONE -bench BenchmarkLocalSort -benchtime 100x -benchmem .

echo "CI OK"
