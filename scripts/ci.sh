#!/bin/sh
# Full CI gate: vet, build, plain tests, race-enabled tests, the chaos soak
# (seeded fault plans through the Reliable stack, 2-D and 3-D), the
# layout-strategy comparison (2-D and 3-D), the per-phase traffic
# regression gate, the 2-D and 3-D golden pins, the
# multi-process TCP smoke (loopback golden + kill -9 crash detection +
# kill-and-recover byte-identity), the picserve daemon smoke (served golden
# + typed admission rejects + daemon kill -9 recovery + SIGTERM drain), an
# examples smoke run, and a short benchmark smoke run that exercises the
# radix sort and allocation assertions.
set -eu
cd "$(dirname "$0")/.."

echo "== go vet =="
go vet ./...

echo "== go build =="
go build ./...

echo "== go test =="
go test ./...

echo "== go test -race =="
# internal/experiments alone takes ~9m under the race detector on an idle
# machine; the default per-package 10m limit leaves no headroom.
go test -race -timeout 30m ./...

echo "== go test -race, shared-memory workers =="
# The parallel kernels again with real OS-thread concurrency and a
# non-trivial default worker count: GOMAXPROCS>1 lets pool workers truly
# interleave, PICPAR_PROCS=3 routes every zero-Workers config through the
# pool, and the radix/pool property tests re-run in race mode.
GOMAXPROCS=4 PICPAR_PROCS=3 go test -race -timeout 30m -count=1 \
    ./internal/par/ ./internal/radix/ ./internal/field/ ./internal/psort/ ./internal/pic/

echo "== chaos soak (2-D and 3-D) =="
go test -count=1 -run 'TestChaos' ./internal/comm/ ./internal/pic/

echo "== golden pins (2-D and 3-D) =="
go test -count=1 -run 'TestGolden' ./internal/pic/

echo "== 3-D smoke =="
go run ./cmd/picsim -dim 3 -mesh 16x16x16 -n 4096 -p 8 -iters 10 -dist irregular -policy dynamic >/dev/null

echo "== strategy comparison (2-D and 3-D: weighted split balances, adaptive selects it) =="
go test -count=1 -run 'TestStrategy' ./internal/pic/
go run ./cmd/picsim -mesh 128x64 -n 4096 -p 8 -iters 15 -dist spike -seed 11 \
    -policy periodic:5 -strategy cost-weighted >/dev/null
go run ./cmd/picsim -dim 3 -mesh 16x16x16 -n 4096 -p 8 -iters 15 -dist spike -seed 11 \
    -policy adaptive:5 >/dev/null

echo "== net smoke (multi-process TCP golden + crash detection + kill-and-recover) =="
sh scripts/netsmoke.sh

echo "== net smoke, 2 workers per rank (golden must not move) =="
PICPAR_PROCS=2 sh scripts/netsmoke.sh

echo "== serve smoke (daemon golden + typed 429 + daemon kill -9 recovery + SIGTERM drain) =="
sh scripts/servesmoke.sh

echo "== traffic gate =="
# -require-baseline: a deleted or missing TRAFFIC_*.json baseline fails CI
# loudly instead of silently re-seeding the comparison.
go run ./cmd/picbench -traffic -require-baseline

echo "== examples smoke =="
go run ./examples/quickstart >/dev/null
go run ./examples/quickstart3d >/dev/null
go run ./examples/netquickstart >/dev/null
go run ./examples/indexing >/dev/null
go run ./examples/skewedload >/dev/null

echo "== bench smoke =="
go test -run NONE -bench 'BenchmarkLocalSort|BenchmarkSimulationIteration3D' -benchtime 100x -benchmem .

echo "CI OK"
