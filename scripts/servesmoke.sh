#!/bin/sh
# Daemon smoke: the acceptance gates for picserve.
#
#  1. Golden gate — a golden job submitted to the daemon runs as a 4-process
#     worker world and must reproduce the 2-D golden TotalTime 1.1831223.
#  2. Admission gate — with a 1-deep queue, the third concurrent job is
#     refused with the typed queue-full reject, and cancellation settles the
#     backlog.
#  3. Kill gate — kill -9 the daemon itself mid-job (deterministically: a
#     PICPAR_CRASH worker death opens a logged multi-second respawn-backoff
#     window); a restarted daemon over the same data directory must kill the
#     orphaned worker group, re-adopt the job, resume it from its latest
#     complete checkpoint epoch, and finish with the golden TotalTime and a
#     Fingerprint byte-identical to the undisturbed run from gate 1.
#  4. Drain gate — SIGTERM with a job mid-run checkpoints and parks the job
#     (state "checkpointing") and the daemon exits 0.
set -eu
cd "$(dirname "$0")/.."

WORK="$(mktemp -d)"
trap 'kill -9 "$DPID" 2>/dev/null || true; rm -rf "$WORK"' EXIT
BIN="$WORK/picserve"
go build -o "$BIN" ./cmd/picserve

DATA="$WORK/data"
DPID=""

# start_daemon [extra flags...] — starts a daemon over $DATA on $ADDR
# (choosing and recording the port on first use), logging to $DLOG.
start_daemon() {
	DLOG="$WORK/daemon.$1.log"
	shift
	if [ -z "${ADDR:-}" ]; then
		"$BIN" -dir "$DATA" -addr 127.0.0.1:0 -addr-file "$WORK/addr" \
			-max-active 1 -max-queue 1 "$@" >"$DLOG" 2>&1 &
		DPID=$!
		i=0
		while [ ! -s "$WORK/addr" ]; do
			i=$((i + 1))
			[ $i -gt 100 ] && { echo "FAIL: daemon never bound" >&2; cat "$DLOG" >&2; exit 1; }
			sleep 0.1
		done
		ADDR="$(cat "$WORK/addr")"
	else
		"$BIN" -dir "$DATA" -addr "$ADDR" \
			-max-active 1 -max-queue 1 "$@" >"$DLOG" 2>&1 &
		DPID=$!
	fi
	URL="http://$ADDR"
	i=0
	until "$BIN" -server "$URL" -status "" >/dev/null 2>&1; do
		i=$((i + 1))
		[ $i -gt 100 ] && { echo "FAIL: daemon never answered" >&2; cat "$DLOG" >&2; exit 1; }
		sleep 0.1
	done
}

GOLDEN="$WORK/golden.json"
cat >"$GOLDEN" <<'EOF'
{"mesh": "32x16", "particles": 2048, "ranks": 4, "iterations": 10,
 "distribution": "irregular", "seed": 7, "policy": "static",
 "verify": true, "checkpoint_every": 3}
EOF
LONG="$WORK/long.json"
cat >"$LONG" <<'EOF'
{"mesh": "32x16", "particles": 2048, "ranks": 4, "iterations": 2000,
 "distribution": "irregular", "seed": 7, "policy": "static",
 "checkpoint_every": 25}
EOF

echo "== serve golden: a submitted job reproduces the 2-D golden =="
start_daemon a
G1="$("$BIN" -server "$URL" -submit "$GOLDEN")"
OUT="$("$BIN" -server "$URL" -wait "$G1" 2>"$WORK/wait.err")" || {
	echo "FAIL: -wait $G1 errored:" >&2
	cat "$WORK/wait.err" "$DLOG" >&2
	exit 1
}
echo "$OUT" | grep -q 'TotalTime 1\.1831223' || {
	echo "FAIL: served golden mismatch; output was:" >&2
	echo "$OUT" >&2
	cat "$DLOG" >&2
	exit 1
}
REF_FP="$(echo "$OUT" | sed -n 's/^  Fingerprint \(.*\)$/\1/p')"
[ -n "$REF_FP" ] || { echo "FAIL: no Fingerprint line from -wait" >&2; exit 1; }
echo "golden TotalTime 1.1831223 reproduced through the daemon"

echo "== serve admission: third concurrent job is a typed 429 =="
L1="$("$BIN" -server "$URL" -submit "$LONG")"
L2="$("$BIN" -server "$URL" -submit "$LONG")"
SUBERR="$("$BIN" -server "$URL" -submit "$LONG" 2>&1)" && {
	echo "FAIL: over-queue submit was accepted: $SUBERR" >&2
	exit 1
}
echo "$SUBERR" | grep -q 'queue-full' || {
	echo "FAIL: over-queue reject is not typed queue-full: $SUBERR" >&2
	exit 1
}
"$BIN" -server "$URL" -cancel "$L2" >/dev/null
"$BIN" -server "$URL" -cancel "$L1" >/dev/null
echo "queue bounded with a typed queue-full reject; backlog cancelled"

# Let the cancelled jobs settle (their pool slot frees) before moving on.
i=0
while "$BIN" -server "$URL" -status "$L1" | grep -q '"state":"running"'; do
	i=$((i + 1))
	[ $i -gt 100 ] && { echo "FAIL: cancelled job never settled" >&2; exit 1; }
	sleep 0.1
done
kill -TERM "$DPID"
wait "$DPID" || { echo "FAIL: idle daemon did not exit 0 on SIGTERM" >&2; exit 1; }

echo "== serve kill -9: daemon killed mid-job, restart finishes byte-identically =="
# PICPAR_CRASH kills worker rank 2 from the inside at iteration 7; the wide
# respawn backoff opens a logged, multi-second window in which the job is
# provably mid-run — that's when the daemon itself takes the kill -9.
PICPAR_CRASH="2:7:$WORK/crash.marker"
export PICPAR_CRASH
start_daemon b -respawn-backoff 6s
G2="$("$BIN" -server "$URL" -submit "$GOLDEN")"
i=0
while ! grep -q 'died, respawning in' "$DLOG"; do
	i=$((i + 1))
	[ $i -gt 300 ] && { echo "FAIL: worker crash never surfaced" >&2; cat "$DLOG" >&2; exit 1; }
	sleep 0.1
done
kill -9 "$DPID"
wait "$DPID" 2>/dev/null || true
unset PICPAR_CRASH
[ -f "$WORK/crash.marker" ] || {
	echo "FAIL: crash hook never fired — the kill gate went unexercised" >&2
	exit 1
}

start_daemon c
grep -q "adopt: job $G2 re-queued" "$DLOG" || {
	# adoption may not have logged yet; give it a beat
	sleep 1
	grep -q "adopt: job $G2 re-queued" "$DLOG" || {
		echo "FAIL: restarted daemon did not adopt job $G2" >&2
		cat "$DLOG" >&2
		exit 1
	}
}
OUT="$("$BIN" -server "$URL" -wait "$G2" 2>"$WORK/wait.err")" || {
	echo "FAIL: -wait $G2 errored:" >&2
	cat "$WORK/wait.err" "$DLOG" >&2
	exit 1
}
echo "$OUT" | grep -q 'TotalTime 1\.1831223' || {
	echo "FAIL: adopted job's golden TotalTime mismatch; output was:" >&2
	echo "$OUT" >&2
	cat "$DLOG" >&2
	exit 1
}
KILL_FP="$(echo "$OUT" | sed -n 's/^  Fingerprint \(.*\)$/\1/p')"
if [ "$KILL_FP" != "$REF_FP" ]; then
	echo "FAIL: post-restart fingerprint $KILL_FP != undisturbed $REF_FP" >&2
	cat "$DLOG" >&2
	exit 1
fi
echo "daemon killed -9 mid-job; restart resumed and finished: fingerprint $KILL_FP matches"

echo "== serve drain: SIGTERM checkpoints and parks the running job =="
D="$("$BIN" -server "$URL" -submit "$LONG")"
i=0
while ! "$BIN" -server "$URL" -status "$D" | grep -q '"state":"running"'; do
	i=$((i + 1))
	[ $i -gt 100 ] && { echo "FAIL: drain job never started running" >&2; exit 1; }
	sleep 0.1
done
sleep 0.5 # let it into the iteration loop
kill -TERM "$DPID"
wait "$DPID" || { echo "FAIL: draining daemon did not exit 0" >&2; cat "$DLOG" >&2; exit 1; }
grep -q 'draining' "$DLOG" || {
	echo "FAIL: no drain announcement in daemon log" >&2
	cat "$DLOG" >&2
	exit 1
}
grep -q '"state": "checkpointing"' "$DATA/jobs/$D/job.json" || {
	echo "FAIL: drained job not parked as checkpointing:" >&2
	cat "$DATA/jobs/$D/job.json" >&2
	exit 1
}
DPID=""
echo "drain parked the running job as checkpointing and exited 0"

echo "SERVE SMOKE OK"
