#!/bin/sh
# Multi-process network smoke: the acceptance gates for the TCP transport.
#
#  1. Golden gate — 4 OS processes over loopback TCP must reproduce the
#     2-D golden TotalTime 1.1831223 byte-identically to the in-process
#     goroutine backend; a second run assembles the neighbor-sparse
#     topology (sparse socket mesh, digest-pinned rendezvous) and must
#     reproduce the same golden.
#  2. Crash gate — kill -9 one rank mid-run; the coordinator process must
#     exit nonzero with a typed delivery diagnostic within a bounded
#     window, never hang.
#  3. Recover gate — the same kill -9 under -recover with checkpointing:
#     the dead rank is respawned, the world rolls back to the latest
#     complete checkpoint epoch, and the run completes with the golden
#     TotalTime and a Fingerprint byte-identical to an undisturbed run.
set -eu
cd "$(dirname "$0")/.."

BIN="$(mktemp -d)/picsim"
trap 'rm -rf "$(dirname "$BIN")"' EXIT
go build -o "$BIN" ./cmd/picsim

echo "== net golden: 4 processes over loopback TCP =="
OUT="$("$BIN" -net 127.0.0.1:0 -verify \
	-mesh 32x16 -n 2048 -p 4 -iters 10 -dist irregular -seed 7 -policy static)"
echo "$OUT" | grep -q 'TotalTime 1\.1831223' || {
	echo "FAIL: net golden mismatch; output was:" >&2
	echo "$OUT" >&2
	exit 1
}
echo "golden TotalTime 1.1831223 reproduced over TCP"

echo "== net golden: 4 processes, neighbor-sparse topology =="
OUT="$("$BIN" -net 127.0.0.1:0 -verify -topology neighbor-sparse \
	-mesh 32x16 -n 2048 -p 4 -iters 10 -dist irregular -seed 7 -policy static)"
echo "$OUT" | grep -q 'TotalTime 1\.1831223' || {
	echo "FAIL: neighbor-sparse net golden mismatch; output was:" >&2
	echo "$OUT" >&2
	exit 1
}
echo "golden TotalTime 1.1831223 reproduced over sparse TCP assembly"

echo "== net crash: kill -9 one rank, expect typed failure =="
LOG="$(dirname "$BIN")/crash.log"
# Long enough that the kill lands mid-simulation on any machine.
"$BIN" -net 127.0.0.1:0 -mesh 128x64 -n 16384 -p 4 -iters 2000 \
	-dist irregular -seed 7 -policy static >"$LOG" 2>&1 &
COORD=$!

# The launcher prints "picsim: rank K pid N" to stderr as each rank starts.
VICTIM=""
i=0
while [ $i -lt 100 ]; do
	VICTIM="$(sed -n 's/^picsim: rank 2 pid \([0-9][0-9]*\)$/\1/p' "$LOG")"
	[ -n "$VICTIM" ] && break
	i=$((i + 1))
	sleep 0.1
done
if [ -z "$VICTIM" ]; then
	echo "FAIL: rank 2 pid never appeared in launcher output" >&2
	kill "$COORD" 2>/dev/null || true
	cat "$LOG" >&2
	exit 1
fi
sleep 0.5 # let the ranks get into the iteration loop
kill -9 "$VICTIM"
KILLED_AT=$(date +%s)

# The coordinator must exit on its own — nonzero — within the failure
# detection budget (peer EOF is near-instant; heartbeat timeout bounds the
# worst case at 10s; supervision grace adds 15s).
STATUS=0
wait "$COORD" || STATUS=$?
ELAPSED=$(($(date +%s) - KILLED_AT))
if [ "$STATUS" -eq 0 ]; then
	echo "FAIL: coordinator exited 0 after a rank was killed" >&2
	cat "$LOG" >&2
	exit 1
fi
if [ "$ELAPSED" -gt 30 ]; then
	echo "FAIL: coordinator took ${ELAPSED}s to notice the dead rank" >&2
	exit 1
fi
grep -q 'delivery failed' "$LOG" || {
	echo "FAIL: no typed delivery diagnostic in output:" >&2
	cat "$LOG" >&2
	exit 1
}
grep -q 'signal: killed' "$LOG" || {
	echo "FAIL: launch error does not attribute the killed rank:" >&2
	cat "$LOG" >&2
	exit 1
}
echo "killed rank diagnosed in ${ELAPSED}s with a typed DeliveryError"

echo "== net recover: kill -9 one rank under -recover, expect byte-identical finish =="
WORK="$(dirname "$BIN")"
# Reference: the golden configuration, undisturbed, with checkpointing and
# elastic recovery armed. Checkpoint writes are charge-free, so the golden
# TotalTime must not move.
REF="$("$BIN" -net 127.0.0.1:0 -verify \
	-mesh 32x16 -n 2048 -p 4 -iters 10 -dist irregular -seed 7 -policy static \
	-checkpoint-dir "$WORK/ck-ref" -checkpoint-every 3 -recover 2>"$WORK/ref.err")"
echo "$REF" | grep -q 'TotalTime 1\.1831223' || {
	echo "FAIL: golden moved with checkpointing+recover armed; output was:" >&2
	echo "$REF" >&2
	exit 1
}
REF_FP="$(echo "$REF" | sed -n 's/^  Fingerprint \(.*\)$/\1/p')"
[ -n "$REF_FP" ] || { echo "FAIL: no Fingerprint line in reference output" >&2; exit 1; }

# Chaos run: PICPAR_CRASH makes rank 2 SIGKILL itself at iteration 7 (a
# real kill -9 from the inside, deterministic on any machine; the marker
# file keeps the respawned replacement from re-crashing). The launcher must
# respawn it, roll the world back to epoch 6, and finish byte-identically.
RLOG="$WORK/recover.log"
STATUS=0
PICPAR_CRASH="2:7:$WORK/crash.marker" "$BIN" -net 127.0.0.1:0 -verify \
	-mesh 32x16 -n 2048 -p 4 -iters 10 -dist irregular -seed 7 -policy static \
	-checkpoint-dir "$WORK/ck-chaos" -checkpoint-every 3 -recover \
	>"$RLOG" 2>&1 || STATUS=$?
if [ "$STATUS" -ne 0 ]; then
	echo "FAIL: recovering launcher exited $STATUS; output was:" >&2
	cat "$RLOG" >&2
	exit 1
fi
[ -f "$WORK/crash.marker" ] || {
	echo "FAIL: crash hook never fired — the recovery path went unexercised" >&2
	exit 1
}
grep -q 'rank 2 died, respawning' "$RLOG" || {
	echo "FAIL: no respawn in launcher output:" >&2
	cat "$RLOG" >&2
	exit 1
}
grep -q 'TotalTime 1\.1831223' "$RLOG" || {
	echo "FAIL: recovered run's golden TotalTime mismatch; output was:" >&2
	cat "$RLOG" >&2
	exit 1
}
CHAOS_FP="$(sed -n 's/^  Fingerprint \(.*\)$/\1/p' "$RLOG")"
if [ "$CHAOS_FP" != "$REF_FP" ]; then
	echo "FAIL: recovered fingerprint $CHAOS_FP != undisturbed $REF_FP" >&2
	cat "$RLOG" >&2
	exit 1
fi
echo "rank 2 killed and recovered: fingerprint $CHAOS_FP matches undisturbed run"

echo "NET SMOKE OK"
