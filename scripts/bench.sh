#!/bin/sh
# Run the wall-clock perf-regression harness: hot-path benchmarks with
# allocation counts, snapshotted to bench/BENCH_<date>.json and compared
# against the previous snapshot. Extra arguments pass through to picbench
# (e.g. -benchtime 100x -bench-tol 0.5).
set -eu
cd "$(dirname "$0")/.."
exec go run ./cmd/picbench -bench "$@"
