package picpar_test

import (
	"testing"

	"picpar"
)

func TestPublicAPIQuickRun(t *testing.T) {
	res, err := picpar.Run(picpar.Config{
		Grid:         picpar.NewGrid(32, 16),
		P:            4,
		NumParticles: 1024,
		Distribution: picpar.DistIrregular,
		Seed:         1,
		Iterations:   20,
		Policy:       picpar.DynamicPolicy(),
		Verify:       true,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.TotalTime <= 0 || len(res.Records) != 20 {
		t.Fatalf("unexpected result: total=%g records=%d", res.TotalTime, len(res.Records))
	}
	if res.FinalParticleCount != 1024 {
		t.Errorf("final particles %d", res.FinalParticleCount)
	}
}

func TestPublicAPIPolicies(t *testing.T) {
	for _, f := range []picpar.PolicyFactory{
		picpar.StaticPolicy(), picpar.PeriodicPolicy(5), picpar.DynamicPolicy(),
	} {
		cfg := picpar.Config{
			Grid:         picpar.NewGrid(16, 16),
			P:            2,
			NumParticles: 256,
			Iterations:   6,
			Policy:       f,
		}
		if _, err := picpar.Run(cfg); err != nil {
			t.Errorf("%s: %v", f().Name(), err)
		}
	}
}

func TestPublicAPIIndexers(t *testing.T) {
	for _, scheme := range []string{picpar.IndexHilbert, picpar.IndexSnake, picpar.IndexRowMajor, picpar.IndexMorton} {
		ix, err := picpar.NewIndexer(scheme, 16, 8)
		if err != nil {
			t.Fatalf("%s: %v", scheme, err)
		}
		if ix.Name() != scheme {
			t.Errorf("name %q != %q", ix.Name(), scheme)
		}
		x, y := ix.Coords(ix.Index(5, 3))
		if x != 5 || y != 3 {
			t.Errorf("%s: round trip failed", scheme)
		}
	}
}

func TestPublicAPIMachines(t *testing.T) {
	cm5 := picpar.CM5Machine()
	mod := picpar.ModernMachine()
	if cm5.Tau <= mod.Tau {
		t.Error("CM-5 startup should exceed a modern cluster's")
	}
}
