// Benchmarks regenerating every table and figure of the paper (one
// Benchmark per artifact, quick problem sizes — run `cmd/picbench -full`
// for the paper-scale versions), plus microbenchmarks of the hot kernels.
//
// Simulated execution times (the quantity the paper reports) are exposed
// via b.ReportMetric as sim-s/op next to the real wall time.
package picpar_test

import (
	"io"
	"math/rand"
	"runtime"
	"sort"
	"testing"

	"picpar"
	"picpar/internal/comm"
	"picpar/internal/commtest"
	"picpar/internal/experiments"
	"picpar/internal/machine"
	"picpar/internal/mesh"
	"picpar/internal/particle"
	"picpar/internal/pic"
	"picpar/internal/policy"
	"picpar/internal/psort"
	"picpar/internal/raceflag"
	"picpar/internal/sfc"
)

// BenchmarkTable1Partitioning regenerates Table 1: load imbalance and
// communication character of the Grid / Particle / Independent strategies.
func BenchmarkTable1Partitioning(b *testing.B) {
	for i := 0; i < b.N; i++ {
		experiments.Table1(io.Discard, true)
	}
}

// BenchmarkFig16StaticVsPeriodic regenerates Figure 16: total execution
// time under static vs periodic redistribution.
func BenchmarkFig16StaticVsPeriodic(b *testing.B) {
	var static, best float64
	for i := 0; i < b.N; i++ {
		res := experiments.Fig16(io.Discard, true)
		c := experiments.Fig16Case{Nx: 128, Ny: 64, N: 8192}
		static = res.StaticTotal(c)
		best = res.BestPeriodicTotal(c)
	}
	b.ReportMetric(static, "sim-s-static")
	b.ReportMetric(best, "sim-s-best-periodic")
}

// BenchmarkFig17PerIterationHistory regenerates Figures 17–19: the
// per-iteration execution-time and scatter-traffic histories.
func BenchmarkFig17PerIterationHistory(b *testing.B) {
	for i := 0; i < b.N; i++ {
		experiments.Fig17to19(io.Discard, true)
	}
}

// BenchmarkFig20Dynamic regenerates Figure 20: periodic sweep vs the
// dynamic Stop-At-Rise policy.
func BenchmarkFig20Dynamic(b *testing.B) {
	var dyn, best float64
	for i := 0; i < b.N; i++ {
		res := experiments.Fig20(io.Discard, true)
		dyn = res.Dynamic().Total
		best = res.BestPeriodicTotal()
	}
	b.ReportMetric(dyn, "sim-s-dynamic")
	b.ReportMetric(best, "sim-s-best-periodic")
}

// BenchmarkTable2Indexing regenerates Table 2 (Hilbert vs snakelike
// computation time) together with Figures 21–22 (overhead) and Table 3
// (efficiency), which are views over the same runs.
func BenchmarkTable2Indexing(b *testing.B) {
	var hil, snk float64
	for i := 0; i < b.N; i++ {
		res := experiments.Table2(io.Discard, true)
		hil, snk = 0, 0
		for _, c := range res.Cells {
			if c.Indexing == sfc.SchemeHilbert {
				hil += c.Overhead
			} else {
				snk += c.Overhead
			}
		}
	}
	b.ReportMetric(hil, "sim-s-overhead-hilbert")
	b.ReportMetric(snk, "sim-s-overhead-snake")
}

// BenchmarkIncrementalVsFullSort regenerates the redistribution-cost
// ablation (the paper's Figure 11 claim) plus the duplicate-table and mesh
// distribution ablations.
func BenchmarkIncrementalVsFullSort(b *testing.B) {
	var inc, full float64
	for i := 0; i < b.N; i++ {
		res := experiments.Ablation(io.Discard, true)
		inc, full = res.IncrementalRedistTime, res.FullSortRedistTime
	}
	b.ReportMetric(inc, "sim-s-incremental")
	b.ReportMetric(full, "sim-s-fullsort")
}

// --- Microbenchmarks of the hot kernels ---

// BenchmarkSimulationIteration measures real host time per PIC iteration
// at the paper's per-rank granularity (1024 particles/rank on 8 ranks).
func BenchmarkSimulationIteration(b *testing.B) {
	cfg := picpar.Config{
		Grid:         picpar.NewGrid(64, 32),
		P:            8,
		NumParticles: 8192,
		Distribution: picpar.DistIrregular,
		Seed:         1,
		Iterations:   b.N,
		Policy:       picpar.PeriodicPolicy(25),
	}
	b.ResetTimer()
	res, err := picpar.Run(cfg)
	if err != nil {
		b.Fatal(err)
	}
	if b.N > 0 {
		b.ReportMetric(res.TotalTime/float64(b.N), "sim-s/iter")
	}
}

// BenchmarkSimulationIteration3D is the same per-iteration measurement
// with the pipeline selected onto a 3-D geometry (1024 particles/rank on 8
// ranks, 16^3 mesh): the dimension seam's dispatch cost shows up here if
// it ever grows.
func BenchmarkSimulationIteration3D(b *testing.B) {
	cfg := picpar.Config{
		Dims:         3,
		Grid3:        picpar.NewGrid3(16, 16, 16),
		P:            8,
		NumParticles: 8192,
		Distribution: picpar.DistIrregular,
		Seed:         1,
		Iterations:   b.N,
		Policy:       picpar.PeriodicPolicy(25),
	}
	b.ResetTimer()
	res, err := picpar.Run(cfg)
	if err != nil {
		b.Fatal(err)
	}
	if b.N > 0 {
		b.ReportMetric(res.TotalTime/float64(b.N), "sim-s/iter")
	}
}

// BenchmarkSimulationIterationWorkers4 is BenchmarkSimulationIteration with
// the physics kernels spread over 4 shared-memory workers per rank. The
// simulated time is identical by construction (the cost model is
// worker-count-invariant); the wall time and allocs/op show what the pool
// costs on this host. Steady state must stay allocation-light: the pool
// goroutines are pre-spawned and the deposition buckets are reused.
func BenchmarkSimulationIterationWorkers4(b *testing.B) {
	cfg := picpar.Config{
		Grid:         picpar.NewGrid(64, 32),
		P:            8,
		NumParticles: 8192,
		Distribution: picpar.DistIrregular,
		Seed:         1,
		Iterations:   b.N,
		Policy:       picpar.PeriodicPolicy(25),
		Workers:      4,
	}
	b.ReportAllocs()
	b.ResetTimer()
	res, err := picpar.Run(cfg)
	if err != nil {
		b.Fatal(err)
	}
	if b.N > 0 {
		b.ReportMetric(res.TotalTime/float64(b.N), "sim-s/iter")
	}
}

// BenchmarkSimulationIteration3DWorkers4 is the 3-D counterpart: trilinear
// footprints over the same 4-worker pool.
func BenchmarkSimulationIteration3DWorkers4(b *testing.B) {
	cfg := picpar.Config{
		Dims:         3,
		Grid3:        picpar.NewGrid3(16, 16, 16),
		P:            8,
		NumParticles: 8192,
		Distribution: picpar.DistIrregular,
		Seed:         1,
		Iterations:   b.N,
		Policy:       picpar.PeriodicPolicy(25),
		Workers:      4,
	}
	b.ReportAllocs()
	b.ResetTimer()
	res, err := picpar.Run(cfg)
	if err != nil {
		b.Fatal(err)
	}
	if b.N > 0 {
		b.ReportMetric(res.TotalTime/float64(b.N), "sim-s/iter")
	}
}

// BenchmarkSimulationIterationReliable is BenchmarkSimulationIteration with
// the reliable-delivery layer installed on a fault-free transport: the two
// must stay within noise of each other (the chaos harness's "fault-free
// overhead" acceptance bar). The sequence-number envelopes add a few bytes
// per wire message but no simulated time and no extra round trips.
func BenchmarkSimulationIterationReliable(b *testing.B) {
	rel := picpar.NewReliable(picpar.ReliableConfig{})
	cfg := picpar.Config{
		Grid:         picpar.NewGrid(64, 32),
		P:            8,
		NumParticles: 8192,
		Distribution: picpar.DistIrregular,
		Seed:         1,
		Iterations:   b.N,
		Policy:       picpar.PeriodicPolicy(25),
		Transport:    rel.Wrap,
	}
	b.ResetTimer()
	res, err := picpar.Run(cfg)
	if err != nil {
		b.Fatal(err)
	}
	if b.N > 0 {
		b.ReportMetric(res.TotalTime/float64(b.N), "sim-s/iter")
	}
	if s := rel.Stats(); s.Retransmissions+s.DupsSuppressed+s.ReordersHealed+s.Failures != 0 {
		b.Fatalf("fault-free run exercised recovery: %+v", s)
	}
}

// BenchmarkSimulationIterationStrategy measures per-iteration cost under
// each layout strategy on the skewed spike workload, one sub-benchmark per
// strategy — the strategy name lands in the bench-JSON entry names, so the
// regression trajectory tracks the weighted and adaptive paths (ledger
// observation, weight allgather, chooser scoring) separately from the
// equal-count baseline.
func BenchmarkSimulationIterationStrategy(b *testing.B) {
	pols := []struct {
		name string
		pol  func() picpar.PolicyFactory
	}{
		{"equal-count", func() picpar.PolicyFactory {
			return picpar.WithStrategy(picpar.PeriodicPolicy(10), picpar.StrategyEqualCount)
		}},
		{"cost-weighted", func() picpar.PolicyFactory {
			return picpar.WithStrategy(picpar.PeriodicPolicy(10), picpar.StrategyCostWeighted)
		}},
		{"adaptive", func() picpar.PolicyFactory { return picpar.AdaptivePolicyEvery(10) }},
	}
	for _, p := range pols {
		b.Run(p.name, func(b *testing.B) {
			cfg := picpar.Config{
				Grid:         picpar.NewGrid(128, 64),
				P:            8,
				NumParticles: 4096,
				Distribution: picpar.DistSpike,
				Seed:         11,
				Iterations:   b.N,
				Policy:       p.pol(),
			}
			b.ResetTimer()
			res, err := picpar.Run(cfg)
			if err != nil {
				b.Fatal(err)
			}
			if b.N > 0 {
				b.ReportMetric(res.TotalTime/float64(b.N), "sim-s/iter")
			}
		})
	}
}

// BenchmarkHilbertIndex measures the per-particle indexing cost.
func BenchmarkHilbertIndex(b *testing.B) {
	ix := sfc.MustNew(sfc.SchemeHilbert, 512, 256)
	b.ResetTimer()
	s := 0
	for i := 0; i < b.N; i++ {
		s += ix.Index(i&511, (i>>3)&255)
	}
	_ = s
}

// BenchmarkSnakeIndex is the baseline ordering's indexing cost.
func BenchmarkSnakeIndex(b *testing.B) {
	ix := sfc.MustNew(sfc.SchemeSnake, 512, 256)
	b.ResetTimer()
	s := 0
	for i := 0; i < b.N; i++ {
		s += ix.Index(i&511, (i>>3)&255)
	}
	_ = s
}

// localSortN is the population of the LocalSort microbenchmarks: large
// enough that the radix passes dominate, matching the perf-harness target.
const localSortN = 32768

// unsortedStore builds n particles with random integral SFC-like keys and
// shuffled unique ids — the population shape LocalSort sees in production.
func unsortedStore(rng *rand.Rand, n int) *particle.Store {
	s := particle.NewStore(n, -1, 1)
	perm := rng.Perm(n)
	for i := 0; i < n; i++ {
		s.Append(0, 0, 0, 0, 0, float64(perm[i]))
		s.Key[i] = float64(rng.Intn(1 << 20))
	}
	return s
}

// BenchmarkLocalSort measures the radix sort + permutation apply behind
// every LocalSort call, at 32k particles. Steady state allocates nothing.
func BenchmarkLocalSort(b *testing.B) {
	commtest.Launch(1, machine.Zero(), func(r comm.Transport) {
		rng := rand.New(rand.NewSource(1))
		ref := unsortedStore(rng, localSortN)
		s := ref.Clone()
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			b.StopTimer()
			copy(s.Key, ref.Key)
			copy(s.ID, ref.ID)
			b.StartTimer()
			psort.LocalSort(r, s)
		}
	})
}

// BenchmarkLocalSortStdlib is the pre-radix comparison sort on the same
// population — the baseline the harness measures speedup against.
func BenchmarkLocalSortStdlib(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	ref := unsortedStore(rng, localSortN)
	s := ref.Clone()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		copy(s.Key, ref.Key)
		copy(s.ID, ref.ID)
		b.StartTimer()
		sort.Sort(s)
	}
}

// TestLocalSortSteadyStateAllocs pins LocalSort's steady-state allocation
// count at zero: after one warm-up call primes the pooled sorter scratch,
// re-sorting a shuffled population must not allocate.
func TestLocalSortSteadyStateAllocs(t *testing.T) {
	if raceflag.Enabled {
		t.Skip("race detector distorts allocation counts")
	}
	commtest.Launch(1, machine.Zero(), func(r comm.Transport) {
		rng := rand.New(rand.NewSource(7))
		ref := unsortedStore(rng, 4096)
		s := ref.Clone()
		psort.LocalSort(r, s) // warm the sorter pool
		allocs := testing.AllocsPerRun(20, func() {
			copy(s.Key, ref.Key)
			copy(s.ID, ref.ID)
			psort.LocalSort(r, s)
		})
		if allocs != 0 {
			t.Errorf("LocalSort steady state: %v allocs/op, want 0", allocs)
		}
	})
}

// unsortedStore3 is unsortedStore with a z axis: the 3-D population shape,
// exercising the wider store in the same sort paths.
func unsortedStore3(rng *rand.Rand, n int) *particle.Store {
	s := particle.NewStore3(n, -1, 1)
	perm := rng.Perm(n)
	for i := 0; i < n; i++ {
		s.Append3(0, 0, 0, 0, 0, 0, float64(perm[i]))
		s.Key[i] = float64(rng.Intn(1 << 20))
	}
	return s
}

// TestLocalSort3DSteadyStateAllocs pins the 3-D steady state at zero
// allocations too: the optional z column must ride the same pooled scratch
// as the 2-D hot path.
func TestLocalSort3DSteadyStateAllocs(t *testing.T) {
	if raceflag.Enabled {
		t.Skip("race detector distorts allocation counts")
	}
	commtest.Launch(1, machine.Zero(), func(r comm.Transport) {
		rng := rand.New(rand.NewSource(7))
		ref := unsortedStore3(rng, 4096)
		s := ref.Clone()
		psort.LocalSort(r, s) // warm the sorter pool
		allocs := testing.AllocsPerRun(20, func() {
			copy(s.Key, ref.Key)
			copy(s.ID, ref.ID)
			psort.LocalSort(r, s)
		})
		if allocs != 0 {
			t.Errorf("3-D LocalSort steady state: %v allocs/op, want 0", allocs)
		}
	})
}

// simAllocsPerIter measures the marginal heap allocations of one PIC
// iteration at the given worker count: two runs differing only in iteration
// count, so setup (stores, pools, first-touch bucket growth) cancels out.
func simAllocsPerIter(t *testing.T, workers int) float64 {
	t.Helper()
	run := func(iters int) uint64 {
		cfg := picpar.Config{
			Grid:         picpar.NewGrid(32, 16),
			P:            2,
			NumParticles: 1024,
			Distribution: picpar.DistIrregular,
			Seed:         3,
			Iterations:   iters,
			Policy:       picpar.StaticPolicy(),
			Workers:      workers,
		}
		runtime.GC()
		var m0, m1 runtime.MemStats
		runtime.ReadMemStats(&m0)
		if _, err := picpar.Run(cfg); err != nil {
			t.Fatal(err)
		}
		runtime.ReadMemStats(&m1)
		return m1.Mallocs - m0.Mallocs
	}
	run(4) // warm the shared pools (wire buffers, sorters)
	short, long := run(4), run(28)
	if long < short {
		return 0
	}
	return float64(long-short) / 24
}

// TestSimulationSteadyStateAllocsWorkers pins the shared-memory layer's
// steady-state allocation discipline at the whole-simulation level: a
// 4-worker run must not allocate meaningfully more per iteration than the
// sequential run. The pool's goroutines are parked once at rank startup and
// the tiled deposition buckets are truncated, never freed, so the marginal
// cost of an iteration is worker-count-independent.
func TestSimulationSteadyStateAllocsWorkers(t *testing.T) {
	if raceflag.Enabled {
		t.Skip("race detector distorts allocation counts")
	}
	seq := simAllocsPerIter(t, 1)
	par4 := simAllocsPerIter(t, 4)
	// Generous absolute slack: world-level bookkeeping (timer wheels, GC
	// noise) wobbles by a few allocations per iteration in both modes.
	if par4 > seq+32 {
		t.Errorf("workers=4 allocates %.1f/iter, sequential %.1f/iter — parallel layer leaks per-iteration allocations", par4, seq)
	}
}

// BenchmarkSampleSort measures a full parallel sample sort of 32768
// particles over 8 ranks.
func BenchmarkSampleSort(b *testing.B) {
	benchSort(b, false)
}

// BenchmarkIncrementalRedistribute measures the bucket-based incremental
// redistribution of the same population after a small drift.
func BenchmarkIncrementalRedistribute(b *testing.B) {
	benchSort(b, true)
}

func benchSort(b *testing.B, incremental bool) {
	b.Helper()
	for i := 0; i < b.N; i++ {
		cfg := pic.Config{
			Grid:         mesh.NewGrid(128, 64),
			P:            8,
			NumParticles: 32768,
			Distribution: particle.DistIrregular,
			Seed:         int64(i),
			Iterations:   1,
			Policy:       policy.NewPeriodic(1),
		}
		if !incremental {
			cfg.Iterations = 0
		}
		if _, err := pic.Run(cfg); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFieldSolve measures the distributed Maxwell solve throughput.
func BenchmarkFieldSolve(b *testing.B) {
	cfg := picpar.Config{
		Grid:         picpar.NewGrid(256, 128),
		P:            8,
		NumParticles: 0,
		Iterations:   b.N,
		Policy:       picpar.StaticPolicy(),
	}
	b.ResetTimer()
	if _, err := picpar.Run(cfg); err != nil {
		b.Fatal(err)
	}
}
